//! Regenerates Fig. 15: the trade-off between accuracy (hit rate) and
//! false alarm (extra count) as the decision threshold sweeps.
//!
//! As in the paper, the training data pools 5 % of every benchmark's
//! training set and the testing layout pools the testing benchmarks
//! (we evaluate each and sum the scores).

use hotspot_bench::{generate_suite, print_header, scale_from_env, subsample_training};
use hotspot_core::{DetectorConfig, HotspotDetector, TrainingSet};

fn main() {
    let scale = scale_from_env();
    print_header("Fig. 15 — accuracy vs false-alarm trade-off", scale);

    let suite = generate_suite(scale);
    // Pool 5 % of every training set.
    let mut pooled = TrainingSet::new();
    for bm in &suite {
        let s = subsample_training(&bm.training, 0.05);
        pooled.hotspots.extend(s.hotspots);
        pooled.nonhotspots.extend(s.nonhotspots);
    }
    println!(
        "pooled training: {} hotspots, {} nonhotspots",
        pooled.hotspots.len(),
        pooled.nonhotspots.len()
    );

    let detector =
        HotspotDetector::train(&pooled, DetectorConfig::default()).expect("pooled training");

    println!(
        "{:>10} {:>9} {:>7} {:>8}",
        "threshold", "hit rate", "#hit", "#extra"
    );
    for threshold in [
        -0.4, -0.2, 0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
    ] {
        let mut hits = 0usize;
        let mut actual = 0usize;
        let mut extras = 0usize;
        for bm in &suite {
            let report = detector
                .detect_with_threshold(&bm.layout, bm.layer, threshold)
                .expect("evaluation");
            let eval = report.score_against(&bm.actual, 0.2, bm.area_um2());
            hits += eval.hits;
            actual += eval.actual;
            extras += eval.extras;
        }
        println!(
            "{:>10.2} {:>8.2}% {:>7} {:>8}",
            threshold,
            100.0 * hits as f64 / actual.max(1) as f64,
            hits,
            extras
        );
    }
}
