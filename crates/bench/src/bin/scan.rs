//! Streaming-scan throughput benchmark.
//!
//! Trains the framework on benchmark 1 of the suite and stream-scans its
//! testing layout tile by tile, then writes `BENCH_scan.json` (schema in
//! `DESIGN.md`): clips/second, tiles scanned vs prefiltered, the observed
//! peak in-flight window, a peak-RSS proxy, and the per-stage breakdown.
//!
//! ```sh
//! HOTSPOT_SCALE=huge cargo run --release --bin scan
//! ```
//!
//! Environment knobs: `HOTSPOT_SCALE` (suite scale; `huge` quadruples the
//! Table-I area), `HOTSPOT_TILE_CORES`, `HOTSPOT_MAX_IN_FLIGHT`,
//! `HOTSPOT_BENCH_OUT` (output path, default `BENCH_scan.json`),
//! `HOTSPOT_SCAN_PROGRESS=1` (live stderr progress line), and
//! `HOTSPOT_METRICS_ADDR` (serve Prometheus `/metrics` during the scan).

use hotspot_bench::{print_header, scale_from_env, ScanBenchReport};
use hotspot_benchgen::{iccad_suite, Benchmark};
use hotspot_core::{
    DetectorConfig, HotspotDetector, MetricsServer, ObsHub, ProgressSink, Sampler, ScanConfig,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let scale = scale_from_env();
    print_header("Streaming scan — throughput & memory bound", scale);

    let spec = iccad_suite(scale).remove(0);
    let name = spec.name.clone();
    println!(
        "generating {name} at {:?} scale ({} x {} um)...",
        scale,
        spec.width / 1000,
        spec.height / 1000
    );
    let benchmark = Benchmark::generate(spec);

    let t0 = Instant::now();
    let mut detector = HotspotDetector::train(&benchmark.training, DetectorConfig::default())
        .expect("framework training");
    println!(
        "trained {} kernels in {:.1?}",
        detector.kernels().len(),
        t0.elapsed()
    );

    // Optional live observability while a long scan runs. Observation
    // only: the report (and the emitted BENCH_scan.json) is bit-identical
    // with or without the hub attached.
    let progress = std::env::var("HOTSPOT_SCAN_PROGRESS").is_ok_and(|v| v == "1");
    let metrics_addr = std::env::var("HOTSPOT_METRICS_ADDR").ok();
    let hub = (progress || metrics_addr.is_some()).then(ObsHub::new);
    let mut server = None;
    let mut sampler = None;
    if let Some(hub) = &hub {
        if progress {
            hub.register(Box::new(ProgressSink::new()));
        }
        if let Some(addr) = &metrics_addr {
            let bound = MetricsServer::bind(addr.as_str(), Arc::clone(hub))
                .expect("bind HOTSPOT_METRICS_ADDR");
            println!("metrics: http://{}/metrics", bound.local_addr());
            server = Some(bound);
        }
        sampler = Some(Sampler::start(Arc::clone(hub), Duration::from_millis(500)));
        detector = detector.with_obs(Arc::clone(hub));
    }

    let defaults = ScanConfig::default();
    let scan = ScanConfig {
        tile_cores: env_usize("HOTSPOT_TILE_CORES", defaults.tile_cores),
        max_in_flight: env_usize("HOTSPOT_MAX_IN_FLIGHT", defaults.max_in_flight),
        tile_density: None,
        ..Default::default()
    };
    let report = detector
        .scan_layout(&benchmark.layout, benchmark.layer, &scan)
        .expect("streaming scan");
    if let Some(sampler) = sampler {
        sampler.stop();
    }
    if let Some(server) = server {
        server.shutdown();
    }

    println!(
        "scanned {} of {} tiles ({} prefiltered) in {:.2?}: {} clips ({:.0} clips/s), flagged {}, reported {}",
        report.tiles_scanned,
        report.tiles_total,
        report.tiles_prefiltered,
        report.scan_time,
        report.clips_extracted,
        report.clips_per_second(),
        report.clips_flagged,
        report.reported.len(),
    );
    println!(
        "peak in flight: {} tiles (window {})",
        report.peak_in_flight,
        scan.effective_in_flight(detector.config().effective_threads().max(1))
    );
    for line in report.telemetry.breakdown().lines() {
        println!("    {line}");
    }

    let threads = detector.config().effective_threads().max(1);
    let bench = ScanBenchReport::from_scan(&report, &name, scale, threads, &scan);
    if let Some(bytes) = bench.peak_rss_bytes {
        println!("peak RSS: {:.1} MiB", bytes as f64 / (1024.0 * 1024.0));
    }
    let out = std::env::var("HOTSPOT_BENCH_OUT").unwrap_or_else(|_| "BENCH_scan.json".into());
    let json = serde_json::to_string_pretty(&bench).expect("serialise BENCH_scan.json");
    std::fs::write(&out, json).expect("write BENCH_scan.json");
    println!("wrote {out}");
}
