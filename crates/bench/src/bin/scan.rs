//! Streaming-scan throughput benchmark with warm-rescan measurement.
//!
//! Trains the framework on benchmark 1 of the suite and stream-scans its
//! testing layout three times through a content-addressed tile cache:
//! cold (fresh cache), warm (unchanged layout — every tile served from
//! the cache), and edited (one rect added — only the touched tiles
//! recompute). A rasterisation micro-phase then re-times density-grid
//! construction for every clip of the layout: the reference per-rect
//! sweep versus one shared summed-area table per tile, asserting the two
//! produce bit-identical grids. Writes `BENCH_scan.json` (schema v3,
//! documented in `DESIGN.md`): clips/second, tiles scanned vs
//! prefiltered, the observed peak in-flight window, a peak-RSS proxy,
//! the per-stage breakdown, the warm/edited re-scan columns, and the
//! raster micro-phase columns.
//!
//! ```sh
//! HOTSPOT_SCALE=huge cargo run --release --bin scan
//! ```
//!
//! Environment knobs: `HOTSPOT_SCALE` (suite scale; `huge` quadruples the
//! Table-I area), `HOTSPOT_TILE_CORES`, `HOTSPOT_MAX_IN_FLIGHT`,
//! `HOTSPOT_BENCH_OUT` (output path, default `BENCH_scan.json`),
//! `HOTSPOT_SCAN_MIN_WARM_SPEEDUP` (exit non-zero when the warm re-scan
//! speedup falls below this floor), `HOTSPOT_SCAN_MIN_RASTER_SPEEDUP`
//! (exit non-zero when the summed-area rasterisation speedup falls below
//! this floor), `HOTSPOT_SCAN_PROGRESS=1` (live stderr progress line),
//! and `HOTSPOT_METRICS_ADDR` (serve Prometheus `/metrics` during the
//! scan).

use hotspot_bench::{print_header, scale_from_env, ScanBenchReport};
use hotspot_benchgen::{iccad_suite, Benchmark};
use hotspot_core::extraction::{passes_filter, split_oversized_into};
use hotspot_core::scan::RASTER_SUBTILE_CORES;
use hotspot_core::training::{density_grid, Region};
use hotspot_core::{
    CancelToken, DetectorConfig, HotspotDetector, MetricsServer, ObsHub, Pattern, ProgressSink,
    RasterMode, RectIndex, Sampler, ScanConfig,
};
use hotspot_geom::{AreaTable, AreaTableGrid, DensityGrid, Rect};
use hotspot_layout::scan::{TileScanner, TileSpec};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let scale = scale_from_env();
    print_header(
        "Streaming scan — throughput, memory bound & warm re-scan",
        scale,
    );

    let spec = iccad_suite(scale).remove(0);
    let name = spec.name.clone();
    println!(
        "generating {name} at {:?} scale ({} x {} um)...",
        scale,
        spec.width / 1000,
        spec.height / 1000
    );
    let benchmark = Benchmark::generate(spec);

    let t0 = Instant::now();
    let mut detector = HotspotDetector::train(&benchmark.training, DetectorConfig::default())
        .expect("framework training");
    println!(
        "trained {} kernels in {:.1?}",
        detector.kernels().len(),
        t0.elapsed()
    );

    // Optional live observability while a long scan runs. Observation
    // only: the report (and the emitted BENCH_scan.json) is bit-identical
    // with or without the hub attached.
    let progress = std::env::var("HOTSPOT_SCAN_PROGRESS").is_ok_and(|v| v == "1");
    let metrics_addr = std::env::var("HOTSPOT_METRICS_ADDR").ok();
    let hub = (progress || metrics_addr.is_some()).then(ObsHub::new);
    let mut server = None;
    let mut sampler = None;
    if let Some(hub) = &hub {
        if progress {
            hub.register(Box::new(ProgressSink::new()));
        }
        if let Some(addr) = &metrics_addr {
            let bound = MetricsServer::bind(addr.as_str(), Arc::clone(hub))
                .expect("bind HOTSPOT_METRICS_ADDR");
            println!("metrics: http://{}/metrics", bound.local_addr());
            server = Some(bound);
        }
        sampler = Some(Sampler::start(Arc::clone(hub), Duration::from_millis(500)));
        detector = detector.with_obs(Arc::clone(hub));
    }

    let cache_path = std::env::temp_dir().join(format!(
        "hotspot-bench-scan-cache-{}.bin",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&cache_path);

    let defaults = ScanConfig::default();
    let scan = ScanConfig {
        tile_cores: env_usize("HOTSPOT_TILE_CORES", defaults.tile_cores),
        max_in_flight: env_usize("HOTSPOT_MAX_IN_FLIGHT", defaults.max_in_flight),
        tile_density: None,
        cache: Some(cache_path.clone()),
        ..Default::default()
    };
    let report = detector
        .scan_layout(&benchmark.layout, benchmark.layer, &scan)
        .expect("cold streaming scan");

    println!(
        "cold: scanned {} of {} tiles ({} prefiltered) in {:.2?}: {} clips ({:.0} clips/s), flagged {}, reported {}",
        report.tiles_scanned,
        report.tiles_total,
        report.tiles_prefiltered,
        report.scan_time,
        report.clips_extracted,
        report.clips_per_second(),
        report.clips_flagged,
        report.reported.len(),
    );
    println!(
        "peak in flight: {} tiles (window {})",
        report.peak_in_flight,
        scan.effective_in_flight(detector.config().effective_threads().max(1))
    );
    for line in report.telemetry.breakdown().lines() {
        println!("    {line}");
    }

    let threads = detector.config().effective_threads().max(1);
    let mut bench = ScanBenchReport::from_scan(&report, &name, scale, threads, &scan);

    // Warm re-scan: unchanged layout, every non-empty tile must be a
    // cache hit and the report digest must match the cold pass. The warm
    // pass also arms the full deadline/watchdog apparatus with generous
    // budgets that never trip, so the digest assertion below doubles as a
    // release-build proof that the cancellation layer is purely
    // observational (and measures its per-tile polling overhead, which
    // lands in the warm-speedup gate).
    let warm_scan = ScanConfig {
        deadline: Some(Duration::from_secs(3600)),
        tile_timeout: Some(Duration::from_secs(600)),
        cancel: Some(CancelToken::new()),
        ..scan.clone()
    };
    let warm = detector
        .scan_layout(&benchmark.layout, benchmark.layer, &warm_scan)
        .expect("warm streaming scan");
    assert_eq!(
        warm.digest(),
        report.digest(),
        "warm re-scan digest must be byte-identical to the cold scan"
    );
    assert_eq!(warm.aborted, None, "generous budgets must never abort");
    assert_eq!(warm.cache_misses, 0, "warm re-scan must be all cache hits");
    bench.record_warm(&warm);
    println!(
        "warm: {:.2?} ({} hits, {} misses) — {:.1}x speedup",
        warm.scan_time, warm.cache_hits, warm.cache_misses, bench.warm_speedup
    );

    // Edited re-scan: add one small rect at the layout centre; only the
    // tiles whose core+ambit window covers it may recompute.
    let mut edited_layout = benchmark.layout.clone();
    let bbox = edited_layout.bbox().expect("non-empty benchmark layout");
    let cx = (bbox.min().x + bbox.max().x) / 2;
    let cy = (bbox.min().y + bbox.max().y) / 2;
    edited_layout.add_rect(
        benchmark.layer,
        Rect::from_extents(cx, cy, cx + 300, cy + 300),
    );
    let edited = detector
        .scan_layout(&edited_layout, benchmark.layer, &scan)
        .expect("edited streaming scan");
    bench.record_edited(&edited);
    println!(
        "edited: {:.2?} ({} hits, {} misses recomputed)",
        edited.scan_time, edited.cache_hits, edited.cache_misses
    );
    if std::env::var("HOTSPOT_SCAN_CHECK_EDITED").is_ok_and(|v| v == "1") {
        // Paranoia pass (CI): a cache-free scan of the edited layout must
        // produce the identical digest. Costs one extra cold scan.
        let uncached = ScanConfig {
            cache: None,
            ..scan.clone()
        };
        let reference = detector
            .scan_layout(&edited_layout, benchmark.layer, &uncached)
            .expect("edited reference scan");
        assert_eq!(
            edited.digest(),
            reference.digest(),
            "edited cached re-scan digest must match a cache-free scan"
        );
        println!("edited digest check passed (cache-free reference identical)");
    }

    // Rasterisation micro-phase: walk the scan's own tile grid, enumerate
    // the exact clip set evaluation sees, and time density-grid
    // construction both ways — the production reference path per clip
    // (`density_grid` under `RasterMode::Reference`: normalise the clip's
    // rects, then the per-rect sweep) versus the production Sat path
    // (padded subtile summed-area tables rebuilt in place per tile with
    // retained allocations, then in-place rasterisation into a reused
    // scratch grid — rebuild included in the timed region, exactly as the
    // scan worker pays it). Each tile's legs are timed as a min over a few
    // repetitions so scheduler noise on a loaded host cannot fabricate or
    // hide a regression. The grids must be bit-identical; the timings feed
    // the `raster_*` columns and the speedup gate.
    let config = detector.config();
    let mut ref_config = config.clone();
    ref_config.raster_mode = RasterMode::Reference;
    let shape = config.clip_shape;
    let g = config.cluster.grid;
    let spec = TileSpec::new(
        shape.core_side() * scan.tile_cores as i64,
        shape.ambit() + shape.core_side(),
    )
    .expect("tile spec");
    let index = RectIndex::from_layout(&benchmark.layout, benchmark.layer, shape.clip_side());
    let scanner = TileScanner::from_rects(index.rects().to_vec(), spec);

    let mut naive_time = Duration::ZERO;
    let mut sat_time = Duration::ZERO;
    let mut raster_clips = 0usize;
    let mut sat_fallbacks = 0usize;
    let mut pieces: Vec<Rect> = Vec::new();
    let mut seen: HashSet<hotspot_geom::Point> = HashSet::new();
    // Production-shaped Sat state: one table grid and one clip-grid
    // scratch reused across every tile (`EvalScratch` holds the same).
    let mut tables = AreaTableGrid::default();
    let mut scratch = DensityGrid::default();
    let mut windows: Vec<Rect> = Vec::new();
    const RASTER_REPS: usize = 5;
    for tile in scanner {
        // Clip enumeration mirrors `scan_layout`'s per-tile extraction;
        // it stays outside both timed regions.
        split_oversized_into(&tile.rects, shape.core_side(), &mut pieces);
        seen.clear();
        let mut patterns: Vec<Pattern> = Vec::new();
        for piece in pieces.iter() {
            let anchor = piece.min();
            if !tile.region.contains_point(anchor) || !seen.insert(anchor) {
                continue;
            }
            let window = shape.window_from_core_corner(anchor);
            let pattern = Pattern::new(window, &index.query(&window.clip));
            if passes_filter(&pattern, &config.distribution) {
                patterns.push(pattern);
            }
        }
        if patterns.is_empty() {
            continue;
        }
        raster_clips += patterns.len();

        let mut naive_best = Duration::MAX;
        let mut naive_grids: Vec<DensityGrid> = Vec::new();
        for _ in 0..RASTER_REPS {
            let t = Instant::now();
            let grids: Vec<DensityGrid> = patterns
                .iter()
                .map(|p| density_grid(p, Region::Core, &ref_config))
                .collect();
            naive_best = naive_best.min(t.elapsed());
            naive_grids = grids;
        }
        naive_time += naive_best;

        let mut sat_best = Duration::MAX;
        for _ in 0..RASTER_REPS {
            let t = Instant::now();
            windows.clear();
            windows.extend(patterns.iter().map(|p| p.window.core));
            tables.rebuild_for(
                &tile.region,
                shape.core_side() * RASTER_SUBTILE_CORES,
                shape.core_side(),
                &tile.rects,
                AreaTable::DEFAULT_MAX_CELLS,
                &windows,
            );
            for p in patterns.iter() {
                if tables.rasterize_into(&p.window.core, g, g, &mut scratch) {
                    std::hint::black_box(&scratch);
                } else {
                    scratch = density_grid(p, Region::Core, &ref_config);
                }
            }
            sat_best = sat_best.min(t.elapsed());
        }
        sat_time += sat_best;

        // Untimed verification against the reference grids (the fallback
        // path runs the very same reference constructor, so only table
        // answers need checking).
        for (p, naive) in patterns.iter().zip(&naive_grids) {
            match tables.rasterize(&p.window.core, g, g) {
                Some(sat) => assert_eq!(
                    naive.cells(),
                    sat.cells(),
                    "summed-area rasterisation must be bit-identical to the reference sweep"
                ),
                None => sat_fallbacks += 1,
            }
        }
    }
    bench.record_raster(naive_time, sat_time);
    println!(
        "raster: {} clips — reference {:.2?}, sat {:.2?} ({:.1}x speedup, {} fallback clips)",
        raster_clips, naive_time, sat_time, bench.raster_speedup, sat_fallbacks
    );

    if let Some(sampler) = sampler {
        sampler.stop();
    }
    if let Some(server) = server {
        server.shutdown();
    }

    if let Some(bytes) = bench.peak_rss_bytes {
        println!("peak RSS: {:.1} MiB", bytes as f64 / (1024.0 * 1024.0));
    }
    let out = std::env::var("HOTSPOT_BENCH_OUT").unwrap_or_else(|_| "BENCH_scan.json".into());
    let json = serde_json::to_string_pretty(&bench).expect("serialise BENCH_scan.json");
    std::fs::write(&out, json).expect("write BENCH_scan.json");
    println!("wrote {out}");
    let _ = std::fs::remove_file(&cache_path);

    if let Ok(floor) = std::env::var("HOTSPOT_SCAN_MIN_WARM_SPEEDUP") {
        let floor: f64 = floor
            .parse()
            .expect("HOTSPOT_SCAN_MIN_WARM_SPEEDUP must be a number");
        if bench.warm_speedup < floor {
            eprintln!(
                "FAIL: warm re-scan speedup {:.2}x below HOTSPOT_SCAN_MIN_WARM_SPEEDUP={floor}",
                bench.warm_speedup
            );
            std::process::exit(1);
        }
        println!(
            "warm speedup gate passed: {:.2}x >= {floor}",
            bench.warm_speedup
        );
    }

    if let Ok(floor) = std::env::var("HOTSPOT_SCAN_MIN_RASTER_SPEEDUP") {
        let floor: f64 = floor
            .parse()
            .expect("HOTSPOT_SCAN_MIN_RASTER_SPEEDUP must be a number");
        if bench.raster_speedup < floor {
            eprintln!(
                "FAIL: rasterisation speedup {:.2}x below HOTSPOT_SCAN_MIN_RASTER_SPEEDUP={floor}",
                bench.raster_speedup
            );
            std::process::exit(1);
        }
        println!(
            "raster speedup gate passed: {:.2}x >= {floor}",
            bench.raster_speedup
        );
    }
}
