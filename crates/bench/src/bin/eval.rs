//! Batched SVM inference benchmark — the clip-evaluation hot loop.
//!
//! For each measured suite scale, trains the framework on benchmark 1 of
//! the suite, extracts every candidate clip of its testing layout, and
//! routes each clip to its admitted kernels once (topology/density
//! admission is identical before and after this engine, so it is
//! precomputed and excluded from the timed region). Three timed passes
//! then run the post-admission hot loop:
//!
//! - **naive** — the pre-engine loop: every admitted kernel re-extracts
//!   the clip's padded feature vector and walks the per-support-vector
//!   `Vec<Vec<f64>>` through [`SvmModel::decision_value`];
//! - **memoized** — features extracted once per clip and shared across
//!   kernels ([`FeatureMemo`]), decisions still on the reference path;
//! - **compiled** — shared features scored through the flattened
//!   [`CompiledModel`] engine on a reusable [`BatchEvaluator`].
//!
//! A fourth pair of passes isolates pure decision values (features fully
//! pre-extracted, reference vs compiled).
//!
//! Schema v2 adds the admission passes over precomputed density grids
//! and topological signatures: **admit-naive** replays the reference
//! per-kernel search (each `DensityGrid::distance` call materialises all
//! eight D8 transforms of the query), while **admit-compiled** routes
//! every clip through the batched [`CentroidRouter`] compiled once per
//! model. A final pair of **full** passes times the admission-included
//! flagging engine ([`EvalEngine::flagging_kernels`]) in both
//! [`EvalMode`]s. Both admission paths must admit the identical
//! clip-kernel pairs; the binary aborts otherwise.
//!
//! Finally `detect` runs end to end on both engines to confirm the
//! flagged hotspot sets are identical and record the kernel-evaluation
//! stage walls. Writes `BENCH_eval.json` (schema in `DESIGN.md`).
//!
//! ```sh
//! cargo run --release -p hotspot-bench --bin eval
//! ```
//!
//! Environment knobs: `HOTSPOT_EVAL_SCALES` (comma-separated suite
//! scales, default `small,medium`), `HOTSPOT_EVAL_REPS` (fixed timed
//! repetitions; default auto-calibrated), `HOTSPOT_EVAL_MIN_SPEEDUP`
//! (exit non-zero when any suite's hot-loop speedup falls below this),
//! `HOTSPOT_EVAL_MIN_ADMIT_SPEEDUP` (same gate for the admission
//! speedup — the CI smoke gate), and `HOTSPOT_BENCH_OUT` (output path,
//! default `BENCH_eval.json`).
//!
//! [`SvmModel::decision_value`]: hotspot_svm::SvmModel::decision_value
//! [`FeatureMemo`]: hotspot_core::training::FeatureMemo
//! [`CompiledModel`]: hotspot_svm::CompiledModel
//! [`BatchEvaluator`]: hotspot_svm::BatchEvaluator
//! [`CentroidRouter`]: hotspot_topo::route::CentroidRouter
//! [`EvalEngine::flagging_kernels`]: hotspot_core::EvalEngine::flagging_kernels
//! [`EvalMode`]: hotspot_core::EvalMode

use hotspot_bench::{parse_scale, EvalBenchReport, EvalSuiteBench, EVAL_BENCH_SCHEMA_VERSION};
use hotspot_benchgen::{iccad_suite, Benchmark, SuiteScale};
use hotspot_core::engine::StageId;
use hotspot_core::training::{density_grid, feature_vector_padded, FeatureMemo, Region};
use hotspot_core::{
    extract_clips, DetectorConfig, EvalEngine, EvalMode, EvalScratch, HotspotDetector, Pattern,
};
use hotspot_svm::{BatchEvaluator, CompiledModel};
use hotspot_topo::route::{Admission, CentroidRouter, RouteStats};
use hotspot_topo::TopoSignature;
use std::hint::black_box;
use std::time::Instant;

/// Kernel indices admitted for one clip, mirroring the topology/density
/// admission of `hotspot_core::feedback::flagging_kernels` (which both
/// engines share unchanged — it is set-up here, not measurement).
fn admitted_kernels(detector: &HotspotDetector, clip: &Pattern) -> Vec<usize> {
    let config = detector.config();
    let window = clip.window.core;
    let rects: Vec<_> = clip
        .rects
        .iter()
        .filter_map(|r| r.intersection(&window))
        .map(|r| r.translate(-window.min()))
        .collect();
    let local = hotspot_geom::Rect::from_extents(0, 0, window.width(), window.height());
    let signature = TopoSignature::of(&local, &rects);
    let grid = density_grid(clip, Region::Core, config);
    let mut out = Vec::new();
    for (idx, k) in detector.kernels().iter().enumerate() {
        let topo_match = signature == k.signature;
        let density_match = if grid.nx() == k.centroid.nx() && grid.ny() == k.centroid.ny() {
            grid.distance(&k.centroid).distance <= config.admission.threshold(k.radius)
        } else {
            false
        };
        if topo_match || density_match {
            out.push(idx);
        }
    }
    out
}

/// The pre-engine hot loop: per admitted kernel, re-extract the padded
/// feature vector and evaluate the reference per-support-vector path.
fn naive_pass(detector: &HotspotDetector, clips: &[Pattern], admitted: &[Vec<usize>]) -> f64 {
    let kernels = detector.kernels();
    let config = detector.config();
    let mut acc = 0.0;
    for (clip, list) in clips.iter().zip(admitted) {
        for &idx in list {
            let features =
                feature_vector_padded(clip, Region::Core, config, kernels[idx].feature_len);
            acc += kernels[idx].model.decision_value(&features);
        }
    }
    acc
}

/// Shared feature extraction, reference decisions.
fn memoized_pass(detector: &HotspotDetector, clips: &[Pattern], admitted: &[Vec<usize>]) -> f64 {
    let kernels = detector.kernels();
    let config = detector.config();
    let mut acc = 0.0;
    for (clip, list) in clips.iter().zip(admitted) {
        let mut memo = FeatureMemo::new(clip, Region::Core, config);
        for &idx in list {
            acc += kernels[idx]
                .model
                .decision_value(memo.padded(kernels[idx].feature_len));
        }
    }
    acc
}

/// Shared feature extraction, batched compiled engine.
fn compiled_pass(
    detector: &HotspotDetector,
    models: &[CompiledModel],
    eval: &mut BatchEvaluator,
    clips: &[Pattern],
    admitted: &[Vec<usize>],
) -> f64 {
    let kernels = detector.kernels();
    let config = detector.config();
    let mut acc = 0.0;
    for (clip, list) in clips.iter().zip(admitted) {
        let mut memo = FeatureMemo::new(clip, Region::Core, config);
        for &idx in list {
            acc += eval.decision_value(&models[idx], memo.padded(kernels[idx].feature_len));
        }
    }
    acc
}

/// Times `reps` repetitions of a pass, returning seconds.
fn time_reps(reps: usize, mut pass: impl FnMut() -> f64) -> f64 {
    let t = Instant::now();
    for _ in 0..reps {
        black_box(pass());
    }
    t.elapsed().as_secs_f64()
}

fn measure_suite(scale: SuiteScale) -> EvalSuiteBench {
    let spec = iccad_suite(scale).remove(0);
    let name = spec.name.clone();
    println!(
        "[{scale:?}] generating {name} ({} x {} um)...",
        spec.width / 1000,
        spec.height / 1000
    );
    let benchmark = Benchmark::generate(spec);

    let t0 = Instant::now();
    let detector = HotspotDetector::train(&benchmark.training, DetectorConfig::default())
        .expect("framework training");
    let kernels = detector.kernels();
    let support_vectors: usize = kernels.iter().map(|k| k.model.support_vector_count()).sum();
    let max_feature_len = kernels.iter().map(|k| k.feature_len).max().unwrap_or(0);
    println!(
        "[{scale:?}] trained {} kernels ({} SVs, max dim {}) in {:.1?}",
        kernels.len(),
        support_vectors,
        max_feature_len,
        t0.elapsed()
    );

    // Untimed set-up: clip extraction and kernel admission (identical on
    // both engines), plus fully pre-extracted features for the pure
    // decision-value passes.
    let clips = extract_clips(&benchmark.layout, benchmark.layer, detector.config());
    let admitted: Vec<Vec<usize>> = clips
        .iter()
        .map(|c| admitted_kernels(&detector, c))
        .collect();
    let clips_admitted = admitted.iter().filter(|l| !l.is_empty()).count();
    let admitted_evals: usize = admitted.iter().map(|l| l.len()).sum();
    println!(
        "[{scale:?}] {} clips, {} admitted to >=1 kernel, {} kernel evaluations",
        clips.len(),
        clips_admitted,
        admitted_evals
    );
    let features: Vec<Vec<Vec<f64>>> = clips
        .iter()
        .zip(&admitted)
        .map(|(clip, list)| {
            let mut memo = FeatureMemo::new(clip, Region::Core, detector.config());
            list.iter()
                .map(|&idx| memo.padded(kernels[idx].feature_len).to_vec())
                .collect()
        })
        .collect();

    let compiled: Vec<CompiledModel> = kernels.iter().map(|k| k.model.compile()).collect();
    let mut eval = BatchEvaluator::new();

    // Calibrate the repetition count on the slowest (naive) pass so each
    // timed section runs long enough for a stable clock, unless pinned.
    let reps = match std::env::var("HOTSPOT_EVAL_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        Some(r) => r,
        None => {
            let probe = time_reps(1, || naive_pass(&detector, &clips, &admitted)).max(1e-6);
            ((0.6 / probe).ceil() as usize).clamp(2, 1000)
        }
    };

    // Warm every path once, then measure.
    black_box(memoized_pass(&detector, &clips, &admitted));
    black_box(compiled_pass(
        &detector, &compiled, &mut eval, &clips, &admitted,
    ));
    let naive_secs = time_reps(reps, || naive_pass(&detector, &clips, &admitted));
    let memoized_secs = time_reps(reps, || memoized_pass(&detector, &clips, &admitted));
    let compiled_secs = time_reps(reps, || {
        compiled_pass(&detector, &compiled, &mut eval, &clips, &admitted)
    });

    let scored = (clips.len() * reps) as f64;
    println!(
        "[{scale:?}] {reps} reps: naive {:.0} clips/s, memoized {:.0}, compiled {:.0} ({:.2}x hot-loop speedup)",
        scored / naive_secs,
        scored / memoized_secs,
        scored / compiled_secs,
        naive_secs / compiled_secs,
    );

    // Pure decision values over the pre-extracted admitted features.
    let decision_naive = |_: &mut BatchEvaluator| {
        let mut acc = 0.0;
        for (list, rows) in admitted.iter().zip(&features) {
            for (&idx, f) in list.iter().zip(rows) {
                acc += kernels[idx].model.decision_value(f);
            }
        }
        acc
    };
    let decision_compiled = |eval: &mut BatchEvaluator| {
        let mut acc = 0.0;
        for (list, rows) in admitted.iter().zip(&features) {
            for (&idx, f) in list.iter().zip(rows) {
                acc += eval.decision_value(&compiled[idx], f);
            }
        }
        acc
    };
    black_box(decision_naive(&mut eval));
    black_box(decision_compiled(&mut eval));
    // The decision passes are far cheaper than the extraction-bound hot
    // loop, so they get their own calibration against the same target.
    let dreps = {
        let probe = time_reps(1, || decision_naive(&mut eval)).max(1e-6);
        ((0.6 / probe).ceil() as usize).clamp(reps, 100_000)
    };
    let decision_naive_secs = time_reps(dreps, || decision_naive(&mut eval));
    let decision_compiled_secs = time_reps(dreps, || decision_compiled(&mut eval));
    let flops: f64 = admitted
        .iter()
        .flatten()
        .map(|&idx| compiled[idx].flops_per_eval() as f64)
        .sum();
    let sv_dot_gflops = flops * dreps as f64 / decision_compiled_secs / 1e9;
    println!(
        "[{scale:?}] decision values: naive {:.2} us, compiled {:.2} us per eval ({:.2}x, {:.2} GFLOP/s SV-dot)",
        decision_naive_secs * 1e6 / (dreps * admitted_evals.max(1)) as f64,
        decision_compiled_secs * 1e6 / (dreps * admitted_evals.max(1)) as f64,
        decision_naive_secs / decision_compiled_secs,
        sv_dot_gflops,
    );

    // Admission passes (schema v2): the naive per-centroid 8-orientation
    // search vs the batched router, over precomputed grids + signatures
    // so only the centroid search itself is timed. Router compilation is
    // model-compile-time work and stays untimed.
    let config = detector.config();
    let grids: Vec<_> = clips
        .iter()
        .map(|c| density_grid(c, Region::Core, config))
        .collect();
    let signatures: Vec<TopoSignature> = clips
        .iter()
        .map(|clip| {
            let window = clip.window.core;
            let rects: Vec<_> = clip
                .rects
                .iter()
                .filter_map(|r| r.intersection(&window))
                .map(|r| r.translate(-window.min()))
                .collect();
            let local = hotspot_geom::Rect::from_extents(0, 0, window.width(), window.height());
            TopoSignature::of(&local, &rects)
        })
        .collect();
    let router = CentroidRouter::compile(
        kernels
            .iter()
            .map(|k| (&k.centroid, config.admission.threshold(k.radius))),
        config.cluster.grid,
        config.cluster.grid,
    );

    let admit_naive = || {
        let mut count = 0usize;
        for (sig, grid) in signatures.iter().zip(&grids) {
            for k in kernels {
                let topo_match = *sig == k.signature;
                let density_match = grid.nx() == k.centroid.nx()
                    && grid.ny() == k.centroid.ny()
                    && grid.distance(&k.centroid).distance <= config.admission.threshold(k.radius);
                if topo_match || density_match {
                    count += 1;
                }
            }
        }
        count as f64
    };
    let mut route_out: Vec<Admission> = Vec::new();
    let mut route_stats = RouteStats::default();
    let admit_compiled_pass = |out: &mut Vec<Admission>, stats: &mut RouteStats| {
        let mut count = 0usize;
        for (sig, grid) in signatures.iter().zip(&grids) {
            router.route_into(grid, out, stats);
            let mut next = 0usize;
            for (idx, k) in kernels.iter().enumerate() {
                let density_match = out.get(next).is_some_and(|a| a.kernel == idx);
                if density_match {
                    next += 1;
                }
                if density_match || *sig == k.signature {
                    count += 1;
                }
            }
        }
        count as f64
    };

    // One untimed pass per path: warm-up, pairwise-agreement check, and
    // the router counters reported for a single sweep.
    let naive_admitted = admit_naive();
    let mut single_stats = RouteStats::default();
    let router_admitted = admit_compiled_pass(&mut route_out, &mut single_stats);
    assert_eq!(
        naive_admitted, router_admitted,
        "admission paths disagree on the admitted clip-kernel pairs"
    );
    let admit_reps = {
        let probe = time_reps(1, admit_naive).max(1e-6);
        ((0.6 / probe).ceil() as usize).clamp(2, 100_000)
    };
    let admit_naive_secs = time_reps(admit_reps, admit_naive);
    let admit_compiled_secs = time_reps(admit_reps, || {
        admit_compiled_pass(&mut route_out, &mut route_stats)
    });
    println!(
        "[{scale:?}] admission ({admit_reps} reps): naive {:.2} ms, routed {:.2} ms per sweep ({:.2}x; {} of {} rows pruned)",
        admit_naive_secs * 1e3 / admit_reps as f64,
        admit_compiled_secs * 1e3 / admit_reps as f64,
        admit_naive_secs / admit_compiled_secs,
        single_stats.rows_pruned(),
        single_stats.rows_considered,
    );

    // Admission-included full flagging passes through the public engine
    // handle, one per eval mode.
    let reference_detector = detector.clone().with_eval_mode(EvalMode::Reference);
    let full_pass = |engine: &EvalEngine<'_>, scratch: &mut EvalScratch| {
        let mut flagged = 0usize;
        for clip in &clips {
            flagged += engine.flagging_kernels(clip, scratch).len();
        }
        flagged as f64
    };
    let mut scratch = EvalScratch::new();
    let reference_engine = reference_detector.eval_engine();
    let compiled_engine = detector.eval_engine();
    black_box(full_pass(&reference_engine, &mut scratch));
    black_box(full_pass(&compiled_engine, &mut scratch));
    let full_reps = {
        let probe = time_reps(1, || full_pass(&reference_engine, &mut scratch)).max(1e-6);
        ((0.6 / probe).ceil() as usize).clamp(2, 1000)
    };
    let full_reference_secs = time_reps(full_reps, || full_pass(&reference_engine, &mut scratch));
    let full_compiled_secs = time_reps(full_reps, || full_pass(&compiled_engine, &mut scratch));
    println!(
        "[{scale:?}] full flagging ({full_reps} reps): reference {:.1} ms, compiled {:.1} ms per sweep ({:.2}x)",
        full_reference_secs * 1e3 / full_reps as f64,
        full_compiled_secs * 1e3 / full_reps as f64,
        full_reference_secs / full_compiled_secs,
    );

    // End-to-end cross-check: both engines must flag the identical
    // hotspot set, and the stage telemetry gives the in-pipeline walls.
    let naive_report = reference_detector
        .detect(&benchmark.layout, benchmark.layer)
        .expect("reference detect");
    let compiled_report = detector
        .detect(&benchmark.layout, benchmark.layer)
        .expect("compiled detect");
    assert_eq!(
        naive_report.reported, compiled_report.reported,
        "engines disagree on the reported hotspot set"
    );
    let stage_ms = |r: &hotspot_core::DetectionReport| {
        r.telemetry
            .stage(StageId::KernelEvaluation)
            .map(|s| s.wall_ms)
            .unwrap_or(0.0)
    };
    println!(
        "[{scale:?}] detect eval stage: naive {:.1} ms, compiled {:.1} ms ({} batches), {} hotspots on both engines",
        stage_ms(&naive_report),
        stage_ms(&compiled_report),
        compiled_report.eval_batches,
        compiled_report.reported.len(),
    );

    EvalSuiteBench {
        benchmark: name,
        scale: format!("{scale:?}").to_lowercase(),
        kernels: kernels.len(),
        support_vectors,
        max_feature_len,
        clips: clips.len(),
        clips_admitted,
        admitted_evals,
        reps,
        naive_wall_ms: naive_secs * 1e3,
        memoized_wall_ms: memoized_secs * 1e3,
        compiled_wall_ms: compiled_secs * 1e3,
        naive_clips_per_second: scored / naive_secs,
        compiled_clips_per_second: scored / compiled_secs,
        speedup: naive_secs / compiled_secs,
        decision_naive_wall_ms: decision_naive_secs * 1e3,
        decision_compiled_wall_ms: decision_compiled_secs * 1e3,
        decision_speedup: decision_naive_secs / decision_compiled_secs,
        sv_dot_gflops,
        detect_eval_stage_naive_ms: stage_ms(&naive_report),
        detect_eval_stage_compiled_ms: stage_ms(&compiled_report),
        eval_batches: compiled_report.eval_batches,
        hotspots_identical: true,
        admit_reps,
        admit_naive_wall_ms: admit_naive_secs * 1e3,
        admit_compiled_wall_ms: admit_compiled_secs * 1e3,
        admit_speedup: admit_naive_secs / admit_compiled_secs,
        admit_admissions: naive_admitted as u64,
        admit_rows_considered: single_stats.rows_considered as u64,
        admit_rows_pruned: single_stats.rows_pruned() as u64,
        full_reps,
        full_reference_wall_ms: full_reference_secs * 1e3,
        full_compiled_wall_ms: full_compiled_secs * 1e3,
        full_speedup: full_reference_secs / full_compiled_secs,
    }
}

fn main() {
    let scales_var = std::env::var("HOTSPOT_EVAL_SCALES").unwrap_or_else(|_| "small,medium".into());
    let scales: Vec<SuiteScale> = scales_var
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| parse_scale(s).unwrap_or_else(|| panic!("unknown suite scale `{s}`")))
        .collect();

    println!("==============================================================");
    println!("Batched SVM inference — naive vs compiled clip evaluation");
    println!("==============================================================");

    let suites: Vec<EvalSuiteBench> = scales.into_iter().map(measure_suite).collect();
    let report = EvalBenchReport {
        schema_version: EVAL_BENCH_SCHEMA_VERSION,
        threads: DetectorConfig::default().effective_threads().max(1),
        suites,
    };

    let out = std::env::var("HOTSPOT_BENCH_OUT").unwrap_or_else(|_| "BENCH_eval.json".into());
    let json = serde_json::to_string_pretty(&report).expect("serialise BENCH_eval.json");
    // Round-trip before writing so a schema regression fails the run, not
    // the downstream reader.
    let parsed: EvalBenchReport = serde_json::from_str(&json).expect("re-parse BENCH_eval.json");
    assert_eq!(parsed, report);
    std::fs::write(&out, json).expect("write BENCH_eval.json");
    println!("wrote {out}");

    if let Ok(min) = std::env::var("HOTSPOT_EVAL_MIN_SPEEDUP") {
        let min: f64 = min
            .parse()
            .expect("HOTSPOT_EVAL_MIN_SPEEDUP must be a number");
        for s in &report.suites {
            if s.speedup < min {
                eprintln!(
                    "FAIL: {} ({}) speedup {:.2} < required {min:.2}",
                    s.benchmark, s.scale, s.speedup
                );
                std::process::exit(1);
            }
        }
        println!("speedup gate ok (all suites >= {min:.2}x)");
    }

    if let Ok(min) = std::env::var("HOTSPOT_EVAL_MIN_ADMIT_SPEEDUP") {
        let min: f64 = min
            .parse()
            .expect("HOTSPOT_EVAL_MIN_ADMIT_SPEEDUP must be a number");
        for s in &report.suites {
            if s.admit_speedup < min {
                eprintln!(
                    "FAIL: {} ({}) admission speedup {:.2} < required {min:.2}",
                    s.benchmark, s.scale, s.admit_speedup
                );
                std::process::exit(1);
            }
        }
        println!("admission speedup gate ok (all suites >= {min:.2}x)");
    }
}
