//! Shared harness code for the experiment binaries (`table1`–`table5`,
//! `fig15`, `scan`, `eval`) that regenerate the paper's evaluation tables
//! and figure, plus the streaming-scan and batched-inference throughput
//! benchmarks.
//!
//! Scale selection: set `HOTSPOT_SCALE=tiny|small|medium|paper|huge`
//! (default `small`; `huge` quadruples the Table-I areas for the scan
//! benchmark). `EXPERIMENTS.md` documents how the scaled suite maps to
//! Table I.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hotspot_benchgen::{iccad_suite, Benchmark, SuiteScale};
use hotspot_core::{
    DetectorConfig, Evaluation, HotspotDetector, PipelineTelemetry, ScanConfig, ScanReport,
    TrainingSet,
};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// One table row: a method evaluated on a benchmark.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Method label (e.g. `ours`, `ours_med`, `1st-proxy`, `basic`).
    pub method: String,
    /// The scored evaluation.
    pub eval: Evaluation,
    /// Training wall-clock time.
    pub train_time: Duration,
    /// Candidate clip count evaluated.
    pub clips: usize,
    /// Merged training + evaluation telemetry (framework methods only).
    pub telemetry: Option<PipelineTelemetry>,
}

impl MethodResult {
    /// Formats the row like Table II: `#hit #extra accuracy hit/extra
    /// runtime`.
    pub fn row(&self) -> String {
        format!(
            "{:<12} {:>5} {:>7} {:>8.2}% {:>10.3e} {:>8.1}s (train {:>6.1}s, {} clips)",
            self.method,
            self.eval.hits,
            self.eval.extras,
            self.eval.accuracy() * 100.0,
            self.eval.hit_extra_ratio(),
            self.eval.runtime.as_secs_f64(),
            self.train_time.as_secs_f64(),
            self.clips,
        )
    }
}

/// Parses a suite-scale name (`tiny`/`small`/`medium`/`paper`/`huge`).
pub fn parse_scale(name: &str) -> Option<SuiteScale> {
    match name.trim() {
        "tiny" => Some(SuiteScale::Tiny),
        "small" => Some(SuiteScale::Small),
        "medium" => Some(SuiteScale::Medium),
        "paper" => Some(SuiteScale::Paper),
        "huge" => Some(SuiteScale::Huge),
        _ => None,
    }
}

/// Reads the suite scale from `HOTSPOT_SCALE` (default: `small`).
pub fn scale_from_env() -> SuiteScale {
    std::env::var("HOTSPOT_SCALE")
        .ok()
        .and_then(|v| parse_scale(&v))
        .unwrap_or(SuiteScale::Small)
}

/// Generates the whole suite at the chosen scale. The blind benchmark
/// (`mx_blind_partial`) reuses benchmark 1's training set, as in the paper.
pub fn generate_suite(scale: SuiteScale) -> Vec<Benchmark> {
    let mut benchmarks: Vec<Benchmark> = iccad_suite(scale)
        .into_iter()
        .map(Benchmark::generate)
        .collect();
    // Paper: MX_blind_partial is evaluated with MX_benchmark1_clip training.
    if benchmarks.len() == 6 {
        let bm1_training = benchmarks[0].training.clone();
        benchmarks[5].training = bm1_training;
    }
    benchmarks
}

/// Trains and evaluates the full framework at a decision threshold.
pub fn run_ours(
    benchmark: &Benchmark,
    config: DetectorConfig,
    method: &str,
    threshold: f64,
) -> MethodResult {
    let t0 = Instant::now();
    let detector = HotspotDetector::train(&benchmark.training, config).expect("framework training");
    let train_time = t0.elapsed();
    let report = detector
        .detect_with_threshold(&benchmark.layout, benchmark.layer, threshold)
        .expect("framework evaluation");
    let eval = report.score_against(
        &benchmark.actual,
        detector.config().min_hit_clip_overlap,
        benchmark.area_um2(),
    );
    let telemetry = detector.summary().telemetry.merge(&report.telemetry);
    MethodResult {
        method: method.to_string(),
        eval,
        train_time,
        clips: report.clips_extracted,
        telemetry: Some(telemetry),
    }
}

/// Runs the fuzzy pattern-matching baseline (contest-winner proxy).
pub fn run_matcher(benchmark: &Benchmark, config: DetectorConfig) -> MethodResult {
    let t0 = Instant::now();
    let matcher = hotspot_baselines::PatternMatcher::train(&benchmark.training, config.clone());
    let train_time = t0.elapsed();
    let report = matcher.detect(&benchmark.layout, benchmark.layer);
    let eval = hotspot_core::score(
        &report.reported,
        &benchmark.actual,
        config.min_hit_clip_overlap,
        benchmark.area_um2(),
        report.runtime,
    );
    MethodResult {
        method: "1st-proxy".to_string(),
        eval,
        train_time,
        clips: report.clips_extracted,
        telemetry: None,
    }
}

/// Runs the single-kernel "Basic" baseline.
pub fn run_basic(benchmark: &Benchmark, config: DetectorConfig) -> MethodResult {
    let t0 = Instant::now();
    let basic = hotspot_baselines::SingleKernelSvm::train(&benchmark.training, config.clone())
        .expect("basic training");
    let train_time = t0.elapsed();
    let report = basic.detect(&benchmark.layout, benchmark.layer);
    let eval = hotspot_core::score(
        &report.reported,
        &benchmark.actual,
        config.min_hit_clip_overlap,
        benchmark.area_um2(),
        report.runtime,
    );
    MethodResult {
        method: "basic".to_string(),
        eval,
        train_time,
        clips: report.clips_extracted,
        telemetry: None,
    }
}

/// Version of the `BENCH_scan.json` schema (bump on breaking changes; the
/// field-by-field layout is documented in `DESIGN.md`).
///
/// History: v1 measured a single cold streaming scan; v2 adds the
/// incremental re-scan columns (`warm_*`, `edited_*`) timing a second
/// scan through the content-addressed tile result cache — unchanged
/// layout (all hits) and after a one-tile edit (only touched tiles
/// recompute); v3 adds the rasterisation micro-phase columns
/// (`raster_naive_wall_ms`, `raster_sat_wall_ms`, `raster_speedup`)
/// timing per-clip density-grid construction through the reference
/// per-rect sweep versus one shared summed-area table per tile. Older
/// records deserialise with the new fields zeroed.
pub const SCAN_BENCH_SCHEMA_VERSION: u32 = 3;

/// The `BENCH_scan.json` record written by the `scan` benchmark binary:
/// streaming-scan throughput, prefilter effectiveness, the memory bound
/// actually observed, and the per-stage breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScanBenchReport {
    /// Schema version ([`SCAN_BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Benchmark name the scan ran on.
    pub benchmark: String,
    /// Suite scale (`tiny`/`small`/`paper`/`huge`).
    pub scale: String,
    /// Worker threads used.
    pub threads: usize,
    /// Tile stride in core sides ([`ScanConfig::tile_cores`]).
    pub tile_cores: usize,
    /// Configured in-flight tile window after resolving `0`.
    pub max_in_flight: usize,
    /// Tiles in the scan grid, including empty ones.
    pub tiles_total: usize,
    /// Non-empty tiles examined.
    pub tiles_scanned: usize,
    /// Tiles discarded by the density prefilter.
    pub tiles_prefiltered: usize,
    /// Candidate clips extracted from surviving tiles.
    pub clips_extracted: usize,
    /// Clips flagged hotspot.
    pub clips_flagged: usize,
    /// Hotspot clips reported after removal.
    pub reported: usize,
    /// Clips classified per second of scan wall time.
    pub clips_per_second: f64,
    /// Most tiles simultaneously in flight.
    pub peak_in_flight: usize,
    /// Peak resident set size of the process in bytes (`VmHWM`), `None`
    /// when procfs is unavailable.
    pub peak_rss_bytes: Option<u64>,
    /// Total scan wall time in milliseconds.
    pub scan_wall_ms: f64,
    /// Wall time of the warm re-scan (unchanged layout, all tiles served
    /// from the cache), in milliseconds; `0.0` in v1 records.
    #[serde(default)]
    pub warm_wall_ms: f64,
    /// Cold-over-warm speedup: `scan_wall_ms / warm_wall_ms`; `0.0` in
    /// v1 records.
    #[serde(default)]
    pub warm_speedup: f64,
    /// Tiles served from the cache on the warm re-scan.
    #[serde(default)]
    pub warm_cache_hits: usize,
    /// Tiles recomputed on the warm re-scan (expected `0`).
    #[serde(default)]
    pub warm_cache_misses: usize,
    /// Wall time of the re-scan after a one-rect edit, in milliseconds;
    /// `0.0` in v1 records.
    #[serde(default)]
    pub edited_wall_ms: f64,
    /// Tiles recomputed after the edit (misses = tiles whose core+ambit
    /// window intersects the edited rect).
    #[serde(default)]
    pub edited_cache_misses: usize,
    /// Tiles still served from the cache after the edit.
    #[serde(default)]
    pub edited_cache_hits: usize,
    /// Wall time of rasterising every extracted clip through the
    /// reference per-rect sweep, in milliseconds; `0.0` in pre-v3
    /// records.
    #[serde(default)]
    pub raster_naive_wall_ms: f64,
    /// Wall time of rasterising the same clips through one shared
    /// summed-area table per tile (build included), in milliseconds;
    /// `0.0` in pre-v3 records.
    #[serde(default)]
    pub raster_sat_wall_ms: f64,
    /// Rasterisation speedup: `raster_naive_wall_ms /
    /// raster_sat_wall_ms`; `0.0` in pre-v3 records.
    #[serde(default)]
    pub raster_speedup: f64,
    /// Per-stage telemetry of the cold scan phase.
    pub telemetry: PipelineTelemetry,
}

impl ScanBenchReport {
    /// Builds the record from a finished [`ScanReport`] plus run metadata.
    pub fn from_scan(
        report: &ScanReport,
        benchmark: &str,
        scale: SuiteScale,
        threads: usize,
        scan: &ScanConfig,
    ) -> ScanBenchReport {
        ScanBenchReport {
            schema_version: SCAN_BENCH_SCHEMA_VERSION,
            benchmark: benchmark.to_string(),
            scale: format!("{scale:?}").to_lowercase(),
            threads,
            tile_cores: scan.tile_cores,
            max_in_flight: scan.effective_in_flight(threads),
            tiles_total: report.tiles_total,
            tiles_scanned: report.tiles_scanned,
            tiles_prefiltered: report.tiles_prefiltered,
            clips_extracted: report.clips_extracted,
            clips_flagged: report.clips_flagged,
            reported: report.reported.len(),
            clips_per_second: report.clips_per_second(),
            peak_in_flight: report.peak_in_flight,
            peak_rss_bytes: peak_rss_bytes(),
            scan_wall_ms: report.scan_time.as_secs_f64() * 1e3,
            warm_wall_ms: 0.0,
            warm_speedup: 0.0,
            warm_cache_hits: 0,
            warm_cache_misses: 0,
            edited_wall_ms: 0.0,
            edited_cache_misses: 0,
            edited_cache_hits: 0,
            raster_naive_wall_ms: 0.0,
            raster_sat_wall_ms: 0.0,
            raster_speedup: 0.0,
            telemetry: report.telemetry.clone(),
        }
    }

    /// Records the rasterisation micro-phase (reference per-rect sweep
    /// versus shared summed-area tables over the identical clip set) and
    /// derives `raster_speedup`.
    pub fn record_raster(&mut self, naive: Duration, sat: Duration) {
        self.raster_naive_wall_ms = naive.as_secs_f64() * 1e3;
        self.raster_sat_wall_ms = sat.as_secs_f64() * 1e3;
        self.raster_speedup = if self.raster_sat_wall_ms > 0.0 {
            self.raster_naive_wall_ms / self.raster_sat_wall_ms
        } else {
            0.0
        };
    }

    /// Records the warm re-scan pass (unchanged layout through the tile
    /// cache) and derives `warm_speedup` from the cold wall time.
    pub fn record_warm(&mut self, report: &ScanReport) {
        self.warm_wall_ms = report.scan_time.as_secs_f64() * 1e3;
        self.warm_speedup = if self.warm_wall_ms > 0.0 {
            self.scan_wall_ms / self.warm_wall_ms
        } else {
            0.0
        };
        self.warm_cache_hits = report.cache_hits;
        self.warm_cache_misses = report.cache_misses;
    }

    /// Records the edited re-scan pass (one-rect edit, touched tiles
    /// recomputed through the cache).
    pub fn record_edited(&mut self, report: &ScanReport) {
        self.edited_wall_ms = report.scan_time.as_secs_f64() * 1e3;
        self.edited_cache_misses = report.cache_misses;
        self.edited_cache_hits = report.cache_hits;
    }
}

/// Version of the `BENCH_eval.json` schema (bump on breaking changes; the
/// field-by-field layout is documented in `DESIGN.md`).
///
/// History: v1 measured the post-admission hot loop only; v2 adds the
/// admission-included columns (`admit_*`, `full_*`) timing the batched
/// 8-orientation centroid router against the naive per-centroid search.
pub const EVAL_BENCH_SCHEMA_VERSION: u32 = 2;

/// One suite's row in `BENCH_eval.json`: naive-vs-compiled throughput of
/// the clip-evaluation hot loop on benchmark 1 of the suite at one scale.
///
/// The timed hot loop is everything *after* kernel admission (which is
/// identical on both engines and therefore precomputed): per-clip feature
/// extraction plus decision values against the admitted kernels. The
/// naive path replays the pre-engine loop — one feature extraction *per
/// admitted kernel* and the reference per-support-vector `Vec<Vec<f64>>`
/// walk; the compiled path extracts once per clip and scores through the
/// flattened [`CompiledModel`](hotspot_svm::CompiledModel) engine. The
/// `decision_*` fields isolate the decision-value arithmetic alone
/// (features fully pre-extracted on both sides).
///
/// Schema v2 adds the admission columns: the `admit_*` fields time the
/// kernel-admission search itself over precomputed density grids and
/// topological signatures (naive per-centroid 8-orientation scan vs the
/// batched [`CentroidRouter`](hotspot_topo::route::CentroidRouter)), and
/// the `full_*` fields time the admission-included flagging engine end
/// to end in both [`EvalMode`](hotspot_core::EvalMode)s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalSuiteBench {
    /// Benchmark name the measurement ran on.
    pub benchmark: String,
    /// Suite scale (`tiny`/`small`/`medium`/`paper`/`huge`).
    pub scale: String,
    /// Trained cluster kernels.
    pub kernels: usize,
    /// Total support vectors across the kernels.
    pub support_vectors: usize,
    /// Largest kernel feature dimension.
    pub max_feature_len: usize,
    /// Candidate clips extracted from the testing layout.
    pub clips: usize,
    /// Clips admitted to at least one kernel.
    pub clips_admitted: usize,
    /// Total (clip, admitted kernel) evaluations per repetition.
    pub admitted_evals: usize,
    /// Timed repetitions of the hot loop (identical for all paths).
    pub reps: usize,
    /// Hot-loop wall of the naive path (per-kernel re-extraction +
    /// per-support-vector walk), in milliseconds.
    pub naive_wall_ms: f64,
    /// Hot-loop wall with extraction memoized per clip but decisions
    /// still on the reference path, in milliseconds.
    pub memoized_wall_ms: f64,
    /// Hot-loop wall of the compiled batched path, in milliseconds.
    pub compiled_wall_ms: f64,
    /// Candidate clips processed per second, naive path.
    pub naive_clips_per_second: f64,
    /// Candidate clips processed per second, compiled path.
    pub compiled_clips_per_second: f64,
    /// Hot-loop speedup: `naive_wall_ms / compiled_wall_ms`.
    pub speedup: f64,
    /// Pure decision-value wall over the admitted features, reference
    /// path, in milliseconds.
    pub decision_naive_wall_ms: f64,
    /// Pure decision-value wall over the admitted features, compiled
    /// engine, in milliseconds.
    pub decision_compiled_wall_ms: f64,
    /// `decision_naive_wall_ms / decision_compiled_wall_ms`.
    pub decision_speedup: f64,
    /// Support-vector dot-product GFLOP/s proxy of the compiled
    /// decision pass (`2 · dim · n_sv` flops per kernel evaluation;
    /// scaling, norms, and `exp` excluded).
    pub sv_dot_gflops: f64,
    /// Kernel-evaluation stage wall of a full `detect` run on the
    /// reference engine, in milliseconds.
    pub detect_eval_stage_naive_ms: f64,
    /// Kernel-evaluation stage wall of a full `detect` run on the
    /// compiled engine, in milliseconds.
    pub detect_eval_stage_compiled_ms: f64,
    /// Clip batches the compiled `detect` run scheduled.
    pub eval_batches: usize,
    /// Whether the two `detect` runs reported the identical hotspot set
    /// (always `true`; the binary aborts otherwise).
    pub hotspots_identical: bool,
    /// Timed repetitions of the admission passes (schema v2).
    #[serde(default)]
    pub admit_reps: usize,
    /// Admission wall of the naive per-centroid 8-orientation search over
    /// precomputed grids and signatures, in milliseconds.
    #[serde(default)]
    pub admit_naive_wall_ms: f64,
    /// Admission wall of the compiled
    /// [`CentroidRouter`](hotspot_topo::route::CentroidRouter), in
    /// milliseconds.
    #[serde(default)]
    pub admit_compiled_wall_ms: f64,
    /// Admission speedup: `admit_naive_wall_ms / admit_compiled_wall_ms`.
    #[serde(default)]
    pub admit_speedup: f64,
    /// Clip-kernel pairs admitted per admission pass (identical on both
    /// paths; the binary aborts otherwise).
    #[serde(default)]
    pub admit_admissions: u64,
    /// Centroid-orientation rows the router considered in one pass.
    #[serde(default)]
    pub admit_rows_considered: u64,
    /// Rows the router pruned in one pass (kernel mass gate + L2 norm
    /// screen + in-row early exit).
    #[serde(default)]
    pub admit_rows_pruned: u64,
    /// Timed repetitions of the admission-included full flagging passes.
    #[serde(default)]
    pub full_reps: usize,
    /// Full flagging pass (admission + feature extraction + decisions)
    /// on the reference engine, in milliseconds.
    #[serde(default)]
    pub full_reference_wall_ms: f64,
    /// Full flagging pass (admission + feature extraction + decisions)
    /// on the compiled engine, in milliseconds.
    #[serde(default)]
    pub full_compiled_wall_ms: f64,
    /// End-to-end engine speedup:
    /// `full_reference_wall_ms / full_compiled_wall_ms`.
    #[serde(default)]
    pub full_speedup: f64,
}

/// The `BENCH_eval.json` record written by the `eval` benchmark binary:
/// batched-inference throughput of the clip-evaluation hot loop, one row
/// per measured suite scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalBenchReport {
    /// Schema version ([`EVAL_BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Worker threads the `detect` comparison ran with.
    pub threads: usize,
    /// One row per measured suite.
    pub suites: Vec<EvalSuiteBench>,
}

/// Best-effort peak resident set size of this process in bytes, parsed
/// from `/proc/self/status` (`VmHWM`). Returns `None` where procfs is
/// unavailable (non-Linux hosts) — the scan benchmark then omits the
/// memory column rather than failing.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

/// Deterministically subsamples a training set to `fraction` (Table IV).
pub fn subsample_training(training: &TrainingSet, fraction: f64) -> TrainingSet {
    training.subsample(fraction)
}

/// Prints the per-stage telemetry breakdown of a framework run, when one was
/// recorded (indented under its table row).
pub fn print_breakdown(result: &MethodResult) {
    if let Some(t) = &result.telemetry {
        for line in t.breakdown().lines() {
            println!("    {line}");
        }
    }
}

/// Prints a table header naming the experiment.
pub fn print_header(title: &str, scale: SuiteScale) {
    println!("==============================================================");
    println!("{title}   (scale: {scale:?}; see EXPERIMENTS.md for mapping)");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_benchgen::{Benchmark, BenchmarkSpec, LithoOracle};
    use hotspot_layout::ClipShape;

    fn tiny_benchmark() -> Benchmark {
        Benchmark::generate(BenchmarkSpec {
            name: "harness".into(),
            process_nm: 32,
            width: 48_000,
            height: 48_000,
            train_hotspots: 10,
            train_nonhotspots: 30,
            test_hotspots: 4,
            seed: 5,
            clip_shape: ClipShape::ICCAD2012,
            oracle: LithoOracle::default(),
            background_fill: 0.5,
            ambit_filler: true,
        })
    }

    #[test]
    fn method_result_row_formats_all_columns() {
        let bm = tiny_benchmark();
        let r = run_ours(&bm, DetectorConfig::default(), "ours", 0.0);
        let row = r.row();
        assert!(row.contains("ours"), "{row}");
        assert!(row.contains("clips"), "{row}");
        assert!(row.contains('%'), "{row}");
    }

    #[test]
    fn all_three_method_runners_score() {
        let bm = tiny_benchmark();
        for r in [
            run_ours(&bm, DetectorConfig::default(), "ours", 0.0),
            run_matcher(&bm, DetectorConfig::default()),
            run_basic(&bm, DetectorConfig::default()),
        ] {
            assert_eq!(r.eval.actual, bm.actual.len(), "{}", r.method);
            assert!(r.clips > 0, "{}", r.method);
            assert!(r.eval.accuracy() >= 0.0 && r.eval.accuracy() <= 1.0);
        }
    }

    #[test]
    fn suite_generation_wires_blind_training() {
        let suite = generate_suite(SuiteScale::Tiny);
        assert_eq!(suite.len(), 6);
        // The blind benchmark reuses benchmark 1's training set.
        assert_eq!(suite[5].training, suite[0].training);
        assert_ne!(suite[5].layout, suite[0].layout);
    }

    #[test]
    fn subsample_helper_delegates() {
        let bm = tiny_benchmark();
        let half = subsample_training(&bm.training, 0.5);
        assert_eq!(half.hotspots.len(), 5);
    }

    #[test]
    fn peak_rss_reads_procfs_on_linux() {
        if let Some(bytes) = peak_rss_bytes() {
            // A live process has touched at least a page.
            assert!(bytes > 4096, "peak RSS {bytes} bytes");
        }
    }

    #[test]
    fn scan_bench_report_round_trips_through_json() {
        let bm = tiny_benchmark();
        let detector =
            HotspotDetector::train(&bm.training, DetectorConfig::default()).expect("training");
        let scan = ScanConfig::default();
        let report = detector
            .scan_layout(&bm.layout, bm.layer, &scan)
            .expect("scan");
        let threads = detector.config().effective_threads().max(1);
        let mut bench =
            ScanBenchReport::from_scan(&report, &bm.spec.name, SuiteScale::Tiny, threads, &scan);
        assert_eq!(bench.schema_version, SCAN_BENCH_SCHEMA_VERSION);
        assert_eq!(bench.schema_version, 3);
        assert_eq!(bench.scale, "tiny");
        assert_eq!(bench.tiles_scanned, report.tiles_scanned);
        assert!(bench.max_in_flight >= 1);
        // Cold-only record leaves the warm-rescan and raster columns
        // defaulted.
        assert_eq!(bench.warm_speedup, 0.0);
        assert_eq!(bench.warm_cache_hits, 0);
        assert_eq!(bench.raster_speedup, 0.0);
        bench.record_warm(&report);
        bench.record_edited(&report);
        bench.record_raster(Duration::from_millis(80), Duration::from_millis(20));
        assert!(bench.warm_wall_ms > 0.0);
        assert!(bench.warm_speedup > 0.0);
        assert!((bench.raster_speedup - 4.0).abs() < 1e-9);
        let json = serde_json::to_string_pretty(&bench).expect("serialise");
        let back: ScanBenchReport = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, bench);
        for field in [
            "\"schema_version\"",
            "\"tiles_scanned\"",
            "\"tiles_prefiltered\"",
            "\"clips_per_second\"",
            "\"peak_in_flight\"",
            "\"peak_rss_bytes\"",
            "\"warm_wall_ms\"",
            "\"warm_speedup\"",
            "\"warm_cache_hits\"",
            "\"edited_cache_misses\"",
            "\"raster_naive_wall_ms\"",
            "\"raster_sat_wall_ms\"",
            "\"raster_speedup\"",
            "\"telemetry\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }

    #[test]
    fn v1_scan_records_deserialise_without_warm_columns() {
        // A v1 record (no warm/edited columns) must still parse, with the
        // v2 fields defaulted to zero.
        let v1 = r#"{
            "schema_version": 1,
            "benchmark": "bm1",
            "scale": "tiny",
            "threads": 2,
            "tile_cores": 3,
            "max_in_flight": 8,
            "tiles_total": 9,
            "tiles_scanned": 7,
            "tiles_prefiltered": 2,
            "clips_extracted": 40,
            "clips_flagged": 5,
            "reported": 4,
            "clips_per_second": 1000.0,
            "peak_in_flight": 4,
            "peak_rss_bytes": null,
            "scan_wall_ms": 12.5,
            "telemetry": {
                "schema_version": 6,
                "phase": "scan",
                "threads": 2,
                "stages": [],
                "total_wall_ms": 12.5
            }
        }"#;
        let back: ScanBenchReport = serde_json::from_str(v1).expect("parse v1");
        assert_eq!(back.schema_version, 1);
        assert_eq!(back.warm_wall_ms, 0.0);
        assert_eq!(back.warm_speedup, 0.0);
        assert_eq!(back.warm_cache_hits, 0);
        assert_eq!(back.warm_cache_misses, 0);
        assert_eq!(back.edited_wall_ms, 0.0);
        assert_eq!(back.edited_cache_hits, 0);
        assert_eq!(back.edited_cache_misses, 0);
        assert_eq!(back.raster_naive_wall_ms, 0.0);
        assert_eq!(back.raster_sat_wall_ms, 0.0);
        assert_eq!(back.raster_speedup, 0.0);
    }
}
