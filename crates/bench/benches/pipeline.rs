//! End-to-end pipeline benchmarks: clip extraction throughput, full-layout
//! detection, and redundant clip removal (backing the runtime columns of
//! Tables II–III and the Section III-G parallelism discussion).

use criterion::{criterion_group, criterion_main, Criterion};
use hotspot_benchgen::{Benchmark, BenchmarkSpec, LithoOracle};
use hotspot_core::{extract_clips, removal, DetectorConfig, HotspotDetector, RectIndex};
use hotspot_layout::ClipShape;
use std::hint::black_box;

fn smoke_benchmark() -> Benchmark {
    Benchmark::generate(BenchmarkSpec {
        name: "bench".into(),
        process_nm: 32,
        width: 48_000,
        height: 48_000,
        train_hotspots: 12,
        train_nonhotspots: 40,
        test_hotspots: 6,
        seed: 99,
        clip_shape: ClipShape::ICCAD2012,
        oracle: LithoOracle::default(),
        background_fill: 0.6,
        ambit_filler: true,
    })
}

fn bench_extraction(c: &mut Criterion) {
    let bm = smoke_benchmark();
    let config = DetectorConfig::default();
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("clip_extraction", |b| {
        b.iter(|| extract_clips(black_box(&bm.layout), bm.layer, &config))
    });
    group.finish();
}

fn bench_detection(c: &mut Criterion) {
    let bm = smoke_benchmark();
    let detector =
        HotspotDetector::train(&bm.training, DetectorConfig::default()).expect("training");
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("detect_full_layout", |b| {
        b.iter(|| {
            detector
                .detect(black_box(&bm.layout), bm.layer)
                .expect("evaluation")
        })
    });
    group.finish();
}

fn bench_removal(c: &mut Criterion) {
    let shape = ClipShape::ICCAD2012;
    // A dense pile of overlapping reported cores.
    let cores: Vec<hotspot_geom::Rect> = (0..40)
        .map(|i| {
            hotspot_geom::Rect::from_origin_size(
                hotspot_geom::Point::new((i % 8) * 400, (i / 8) * 400),
                1200,
                1200,
            )
        })
        .collect();
    let index = RectIndex::build(
        vec![hotspot_geom::Rect::from_extents(0, 0, 5000, 4000)],
        4800,
    );
    let config = DetectorConfig::default();
    c.bench_function("redundant_clip_removal", |b| {
        b.iter(|| removal::remove_redundant_clips(black_box(cores.clone()), shape, &index, &config))
    });
}

fn bench_oracle(c: &mut Criterion) {
    use hotspot_geom::{Point, Rect};
    let oracle = LithoOracle::default();
    let window = Rect::centered_square(Point::new(0, 0), 4800);
    let core = Rect::centered_square(Point::new(0, 0), 1200);
    let rects = [
        Rect::from_extents(-500, -150, -40, 150),
        Rect::from_extents(40, -150, 500, 150),
        Rect::from_extents(-500, 400, 500, 550),
    ];
    c.bench_function("litho_oracle_susceptibility", |b| {
        b.iter(|| oracle.susceptibility(black_box(&core), black_box(&window), black_box(&rects)))
    });
}

fn bench_gdsii(c: &mut Criterion) {
    let bm = smoke_benchmark();
    let bytes = hotspot_layout::gdsii::write_bytes(&bm.layout).expect("serialise");
    let mut group = c.benchmark_group("gdsii");
    group.sample_size(20);
    group.bench_function("write", |b| {
        b.iter(|| hotspot_layout::gdsii::write_bytes(black_box(&bm.layout)))
    });
    group.bench_function("read", |b| {
        b.iter(|| hotspot_layout::gdsii::read_bytes(black_box(&bytes)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_extraction,
    bench_detection,
    bench_removal,
    bench_oracle,
    bench_gdsii
);
criterion_main!(benches);
