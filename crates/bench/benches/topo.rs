//! Micro-benchmarks of topological classification and feature extraction
//! (backing the runtime discussion of Sections III-B/III-C).

use criterion::{criterion_group, criterion_main, Criterion};
use hotspot_geom::{DensityGrid, Rect};
use hotspot_topo::{
    CriticalFeatures, DirectionalStrings, FeatureConfig, Mtcg, Tiling, TopoSignature,
};
use std::hint::black_box;

fn core_window() -> Rect {
    Rect::from_extents(0, 0, 1200, 1200)
}

/// A representative core pattern: comb plus flanking bars (≈ 8 rects).
fn sample_rects() -> Vec<Rect> {
    vec![
        Rect::from_extents(0, 0, 1100, 150),
        Rect::from_extents(0, 150, 120, 500),
        Rect::from_extents(300, 150, 420, 500),
        Rect::from_extents(600, 150, 720, 500),
        Rect::from_extents(900, 150, 1020, 500),
        Rect::from_extents(0, 620, 1100, 770),
        Rect::from_extents(200, 850, 520, 1050),
        Rect::from_extents(700, 850, 1020, 1050),
    ]
}

fn bench_dirstrings(c: &mut Criterion) {
    let window = core_window();
    let rects = sample_rects();
    c.bench_function("directional_strings", |b| {
        b.iter(|| DirectionalStrings::of(black_box(&window), black_box(&rects)))
    });
    let a = DirectionalStrings::of(&window, &rects);
    let other = DirectionalStrings::of(&window, &rects[..6]);
    c.bench_function("theorem1_match", |b| {
        b.iter(|| black_box(&a).same_topology(black_box(&other)))
    });
    c.bench_function("topo_signature", |b| {
        b.iter(|| TopoSignature::of(black_box(&window), black_box(&rects)))
    });
}

fn bench_density(c: &mut Criterion) {
    let window = core_window();
    let g1 = DensityGrid::from_rects(&window, &sample_rects(), 8, 8);
    let g2 = DensityGrid::from_rects(&window, &sample_rects()[..5], 8, 8);
    c.bench_function("density_distance_eq1", |b| {
        b.iter(|| black_box(&g1).distance(black_box(&g2)))
    });
}

fn bench_mtcg_features(c: &mut Criterion) {
    let window = core_window();
    let rects = sample_rects();
    c.bench_function("tiling_horizontal", |b| {
        b.iter(|| Tiling::horizontal(black_box(&window), black_box(&rects)))
    });
    let tiling = Tiling::horizontal(&window, &rects);
    c.bench_function("mtcg_build", |b| b.iter(|| Mtcg::build(black_box(&tiling))));
    let cfg = FeatureConfig::default();
    c.bench_function("critical_features", |b| {
        b.iter(|| CriticalFeatures::extract(black_box(&window), black_box(&rects), &cfg))
    });
}

criterion_group!(
    benches,
    bench_dirstrings,
    bench_density,
    bench_mtcg_features
);
criterion_main!(benches);
