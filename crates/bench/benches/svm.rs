//! Micro-benchmarks of the SMO solver (backing the training-time
//! discussion of Section III-D3: many small kernels beat one huge kernel).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hotspot_svm::{Kernel, SvmTrainer};
use std::hint::black_box;

/// Deterministic two-class problem of size `n`.
fn problem(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let t = i as f64 * 0.7368;
        let label = if i % 2 == 0 { 1.0 } else { -1.0 };
        let shift = if label > 0.0 { 0.8 } else { 0.0 };
        x.push(vec![
            (t.sin() * 0.4 + shift).fract().abs(),
            (t.cos() * 0.4 + shift).fract().abs(),
        ]);
        y.push(label);
    }
    (x, y)
}

fn bench_smo_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("smo_train");
    group.sample_size(10);
    for n in [50usize, 100, 200, 400] {
        let (x, y) = problem(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                SvmTrainer::new(Kernel::rbf(1.0))
                    .c(100.0)
                    .train(black_box(&x), black_box(&y))
                    .expect("training")
            })
        });
    }
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let (x, y) = problem(200);
    let model = SvmTrainer::new(Kernel::rbf(1.0))
        .c(100.0)
        .train(&x, &y)
        .expect("training");
    let q = vec![0.5, 0.5];
    c.bench_function("svm_decision_value", |b| {
        b.iter(|| model.decision_value(black_box(&q)))
    });
}

criterion_group!(benches, bench_smo_scaling, bench_predict);
criterion_main!(benches);
