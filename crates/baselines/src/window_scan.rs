//! Window-based clip extraction at 50 % overlap — the Table V baseline.
//!
//! The naive evaluation scheme slides a core-sized window across the whole
//! layout with 50 % overlap and evaluates every position. Table V compares
//! its clip count with the paper's density-filtered extraction.

use hotspot_geom::{Coord, Point, Rect};
use hotspot_layout::{ClipShape, ClipWindow};

/// The number of window positions a 50 %-overlap scan visits on a
/// `width × height` layout: `⌊W/step⌋ × ⌊H/step⌋` with `step = core/2`
/// (edge windows may overhang the layout, as the paper counts them).
///
/// Matches the paper's Table V arithmetic: a 0.110 × 0.115 mm layout
/// scanned with a 1.2 µm window at 50 % overlap gives 34 953 clips, and
/// 0.222 × 0.222 mm gives 136 900.
pub fn window_clip_count(width: Coord, height: Coord, shape: ClipShape) -> usize {
    let step = shape.core_side() / 2;
    if width < shape.core_side() || height < shape.core_side() || step == 0 {
        return 0;
    }
    ((width / step) * (height / step)) as usize
}

/// Materialises the scan's clip windows over `bounds` (one anchor every
/// `core/2`; edge windows may overhang the bounds, matching the count).
pub fn window_clips(bounds: &Rect, shape: ClipShape) -> Vec<ClipWindow> {
    let step = shape.core_side() / 2;
    let mut out = Vec::new();
    if bounds.width() < shape.core_side() || bounds.height() < shape.core_side() {
        return out;
    }
    let nx = bounds.width() / step;
    let ny = bounds.height() / step;
    for iy in 0..ny {
        for ix in 0..nx {
            out.push(shape.window_from_core_corner(Point::new(
                bounds.min().x + ix * step,
                bounds.min().y + iy * step,
            )));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_table5_arithmetic() {
        // Array_benchmark1: 0.110 mm × 0.115 mm, 1.2 µm window, 50 % overlap
        // -> 34 953 clips in Table V.
        let n = window_clip_count(110_000, 115_000, ClipShape::ICCAD2012);
        assert_eq!(n, 34_953);
    }

    #[test]
    fn matches_paper_for_benchmark5() {
        // 0.222 mm × 0.222 mm -> 136 900.
        let n = window_clip_count(222_000, 222_000, ClipShape::ICCAD2012);
        assert_eq!(n, 136_900);
    }

    #[test]
    fn count_matches_materialised_windows() {
        let bounds = Rect::from_extents(0, 0, 24_000, 18_000);
        let shape = ClipShape::ICCAD2012;
        let clips = window_clips(&bounds, shape);
        assert_eq!(
            clips.len(),
            window_clip_count(bounds.width(), bounds.height(), shape)
        );
        // All core anchors inside bounds, stepped by core/2.
        for w in &clips {
            assert!(bounds.contains_point(w.core.min()));
            assert_eq!(w.core.min().x % 600, 0);
        }
    }

    #[test]
    fn degenerate_layouts() {
        assert_eq!(window_clip_count(500, 500, ClipShape::ICCAD2012), 0);
        assert!(window_clips(&Rect::from_extents(0, 0, 500, 500), ClipShape::ICCAD2012).is_empty());
    }
}
