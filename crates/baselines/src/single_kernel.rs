//! The "Basic" baseline: one huge SVM kernel over raw density-grid
//! features (Table III).
//!
//! No topological classification, no population balancing, no feedback
//! kernel, no redundant clip removal. Features are the pixels of the core
//! region's density grid (the rapid layout-pattern classification features
//! of Wuu et al. \[9\]), which have a fixed length for every pattern — the
//! property the paper's critical features only gain *within* a cluster.

use crate::density::core_density_features as grid_features;
use hotspot_core::{extract_clips, DetectorConfig, Pattern, TrainingSet};
use hotspot_layout::{ClipWindow, LayerId, Layout};
use hotspot_svm::{Kernel, SvmModel, SvmTrainer, TrainError};
use std::time::{Duration, Instant};

/// The single-kernel baseline detector.
#[derive(Debug, Clone)]
pub struct SingleKernelSvm {
    model: SvmModel,
    grid: usize,
    config: DetectorConfig,
}

/// Detection outcome of the baseline (reported windows plus timing).
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// Reported hotspot windows (unfiltered — no removal stage).
    pub reported: Vec<ClipWindow>,
    /// Candidate clips evaluated.
    pub clips_extracted: usize,
    /// Wall-clock evaluation time.
    pub runtime: Duration,
}

impl SingleKernelSvm {
    /// Trains the baseline on the full, unbalanced training set.
    ///
    /// # Errors
    ///
    /// Propagates SVM training failures.
    pub fn train(training: &TrainingSet, config: DetectorConfig) -> Result<Self, TrainError> {
        let grid = config.cluster.grid;
        let mut x = Vec::with_capacity(training.len());
        let mut y = Vec::with_capacity(training.len());
        for p in &training.hotspots {
            x.push(grid_features(p, grid));
            y.push(1.0);
        }
        for p in &training.nonhotspots {
            x.push(grid_features(p, grid));
            y.push(-1.0);
        }
        let model = SvmTrainer::new(Kernel::rbf(config.initial_gamma.max(1e-6)))
            .c(config.initial_c)
            .train(&x, &y)?;
        Ok(SingleKernelSvm {
            model,
            grid,
            config,
        })
    }

    /// Classifies one clip pattern.
    pub fn classify(&self, pattern: &Pattern) -> bool {
        self.classify_with_threshold(pattern, self.config.decision_threshold)
    }

    /// Classification at an explicit decision threshold.
    pub fn classify_with_threshold(&self, pattern: &Pattern, threshold: f64) -> bool {
        self.model
            .decision_value(&grid_features(pattern, self.grid))
            > threshold
    }

    /// Scans a testing layout: same clip extraction as the framework, but a
    /// single kernel and no post-processing.
    pub fn detect(&self, layout: &Layout, layer: LayerId) -> BaselineReport {
        let start = Instant::now();
        let clips = extract_clips(layout, layer, &self.config);
        let reported = clips
            .iter()
            .filter(|c| self.classify(c))
            .map(|c| c.window)
            .collect();
        BaselineReport {
            reported,
            clips_extracted: clips.len(),
            runtime: start.elapsed(),
        }
    }

    /// The trained model's support-vector count (for diagnostics).
    pub fn support_vector_count(&self) -> usize {
        self.model.support_vector_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_core::Label;
    use hotspot_geom::{Point, Rect};
    use hotspot_layout::ClipShape;

    fn pattern(rects: &[Rect]) -> Pattern {
        let shape = ClipShape::ICCAD2012;
        Pattern::new(shape.window_from_core_corner(Point::new(0, 0)), rects)
    }

    fn hs(gap: i64) -> Vec<Rect> {
        vec![
            Rect::from_extents(0, 0, 400, 300),
            Rect::from_extents(400 + gap, 0, 800 + gap, 300),
        ]
    }

    fn training() -> TrainingSet {
        let mut ts = TrainingSet::new();
        for i in 0..5 {
            ts.push(pattern(&hs(60 + 10 * i)), Label::Hotspot);
        }
        for i in 0..10 {
            ts.push(pattern(&hs(350 + 5 * i)), Label::NonHotspot);
        }
        ts
    }

    #[test]
    fn trains_and_classifies() {
        let b = SingleKernelSvm::train(&training(), DetectorConfig::default()).unwrap();
        assert!(b.classify(&pattern(&hs(75))));
        assert!(!b.classify(&pattern(&hs(380))));
        assert!(b.support_vector_count() >= 2);
    }

    #[test]
    fn threshold_shifts_decision() {
        let b = SingleKernelSvm::train(&training(), DetectorConfig::default()).unwrap();
        let p = pattern(&hs(75));
        assert!(b.classify_with_threshold(&p, -10.0));
        assert!(!b.classify_with_threshold(&p, 10.0));
    }

    #[test]
    fn detect_scans_layout() {
        let b = SingleKernelSvm::train(&training(), DetectorConfig::default()).unwrap();
        let mut layout = Layout::new("t");
        for r in hs(70) {
            layout.add_rect(LayerId::METAL1, r.translate(Point::new(24_000, 24_000)));
        }
        // Dense filler so the distribution filter passes.
        for r in hotspot_benchgen::generator::filler_rects(Point::new(24_000, 24_000)) {
            layout.add_rect(LayerId::METAL1, r);
        }
        let report = b.detect(&layout, LayerId::METAL1);
        assert!(report.clips_extracted > 0);
        let target = ClipShape::ICCAD2012.window_from_core_corner(Point::new(24_000, 24_000));
        assert!(report.reported.iter().any(|w| w.is_hit(&target, 0.2)));
    }

    #[test]
    fn grid_features_fixed_length() {
        let a = grid_features(&pattern(&hs(60)), 8);
        let b = grid_features(&pattern(&[Rect::from_extents(0, 0, 100, 100)]), 8);
        assert_eq!(a.len(), 64);
        assert_eq!(b.len(), 64);
    }
}
