//! Shared core-region density-grid construction for the baselines.
//!
//! Both the single-kernel "Basic" SVM and the fuzzy pattern matcher
//! featurise a clip the same way: clamp the clip's rects to the core
//! region, translate into the core-local frame, and rasterise a
//! `grid × grid` density grid. This module is the single home of that
//! construction so the two baselines cannot drift apart.

use hotspot_core::Pattern;
use hotspot_geom::{DensityGrid, Rect};

/// Rasterises `pattern`'s core-region geometry into a `grid × grid`
/// density grid in the core-local frame (origin at the core's min
/// corner).
pub fn core_density_grid(pattern: &Pattern, grid: usize) -> DensityGrid {
    let core = pattern.window.core;
    let local = Rect::from_extents(0, 0, core.width(), core.height());
    let rects: Vec<Rect> = pattern
        .rects
        .iter()
        .filter_map(|r| r.intersection(&core))
        .map(|r| r.translate(-core.min()))
        .collect();
    DensityGrid::from_rects(&local, &rects, grid, grid)
}

/// The density grid's cells as a flat feature vector (row-major), the
/// fixed-length feature layout of the "Basic" baseline.
pub fn core_density_features(pattern: &Pattern, grid: usize) -> Vec<f64> {
    core_density_grid(pattern, grid).cells().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_geom::Point;
    use hotspot_layout::ClipShape;

    #[test]
    fn grid_and_features_agree_and_are_core_local() {
        let window = ClipShape::ICCAD2012.window_from_core_corner(Point::new(1000, 2000));
        let core = window.core;
        let rect = Rect::from_extents(
            core.min().x,
            core.min().y,
            core.min().x + 400,
            core.min().y + 300,
        );
        let pattern = Pattern::new(window, &[rect]);
        let g = core_density_grid(&pattern, 4);
        let f = core_density_features(&pattern, 4);
        assert_eq!(g.cells(), f.as_slice());
        // Same geometry at a different absolute position featurises
        // identically: the construction is core-local.
        let window2 = ClipShape::ICCAD2012.window_from_core_corner(Point::new(0, 0));
        let core2 = window2.core;
        let rect2 = Rect::from_extents(
            core2.min().x,
            core2.min().y,
            core2.min().x + 400,
            core2.min().y + 300,
        );
        let f2 = core_density_features(&Pattern::new(window2, &[rect2]), 4);
        assert_eq!(f, f2);
    }
}
