//! Baseline hotspot detectors for the paper's comparisons.
//!
//! - [`SingleKernelSvm`] — the paper's own "Basic" baseline (Table III):
//!   one huge C-SVM over density-grid features, no topological
//!   classification, no balancing, no feedback, no removal.
//! - [`PatternMatcher`] — a fuzzy density-grid matcher standing in for the
//!   ICCAD-2012 contest winners' fuzzy pattern matching (Table II).
//! - [`window_scan`] — 50 %-overlap sliding-window clip extraction, the
//!   Table V comparison point for our density-filtered extraction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod density;
pub mod pattern_match;
pub mod single_kernel;
pub mod window_scan;

pub use pattern_match::PatternMatcher;
pub use single_kernel::SingleKernelSvm;
pub use window_scan::{window_clip_count, window_clips};
