//! Fuzzy pattern matching — the contest-winner proxy (Table II).
//!
//! The ICCAD-2012 winners matched testing clips against the training
//! hotspot library with fuzzy tolerances. This baseline stores each
//! training hotspot's core density grid and flags a clip when its
//! orientation-minimised eq. (1) distance to any library pattern falls
//! below a threshold calibrated on the training data. The profile matches
//! the first-place entry: very high accuracy on seen-pattern layouts, large
//! extra counts (any fuzzily similar clip matches).

use crate::density::core_density_grid as core_grid;
use hotspot_core::{extract_clips, DetectorConfig, Pattern, TrainingSet};
use hotspot_geom::DensityGrid;
use hotspot_layout::{ClipWindow, LayerId, Layout};
use std::time::{Duration, Instant};

/// The fuzzy pattern-matching baseline.
#[derive(Debug, Clone)]
pub struct PatternMatcher {
    library: Vec<DensityGrid>,
    threshold: f64,
    grid: usize,
    config: DetectorConfig,
}

/// Detection outcome of the matcher.
#[derive(Debug, Clone)]
pub struct MatchReport {
    /// Reported hotspot windows.
    pub reported: Vec<ClipWindow>,
    /// Candidate clips evaluated.
    pub clips_extracted: usize,
    /// Wall-clock evaluation time.
    pub runtime: Duration,
}

impl PatternMatcher {
    /// Builds the matcher from the training hotspots, auto-calibrating the
    /// fuzziness threshold.
    ///
    /// The threshold starts from the spread among the hotspot library
    /// itself (a pattern must match its own variations) and is capped so
    /// that at most a small fraction of training nonhotspots would match —
    /// the balance the contest's fuzzy matchers struck.
    ///
    /// # Panics
    ///
    /// Panics if the training set has no hotspots.
    pub fn train(training: &TrainingSet, config: DetectorConfig) -> PatternMatcher {
        assert!(
            !training.hotspots.is_empty(),
            "pattern matcher needs hotspot patterns"
        );
        let grid = config.cluster.grid;
        let library: Vec<DensityGrid> = training
            .hotspots
            .iter()
            .map(|p| core_grid(p, grid))
            .collect();

        // Intra-library nearest-neighbour distances: the fuzz needed to
        // catch variations of known patterns. The winners prioritised
        // accuracy, so take a generous (90th percentile) tolerance.
        let mut intra: Vec<f64> = Vec::new();
        for (i, g) in library.iter().enumerate() {
            let mut best = f64::INFINITY;
            for (j, h) in library.iter().enumerate() {
                if i != j {
                    best = best.min(g.distance(h).distance);
                }
            }
            if best.is_finite() {
                intra.push(best);
            }
        }
        intra.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let base = intra
            .get(intra.len() * 9 / 10)
            .copied()
            .unwrap_or(1.0)
            .max(0.25);

        // Cap: distances from nonhotspots to the library; stay below the
        // median so the matcher does not flag the *typical* safe pattern
        // (it will still flag plenty of near-misses — the contest winners'
        // extra counts were large).
        let mut safe_dist: Vec<f64> = training
            .nonhotspots
            .iter()
            .map(|p| {
                let g = core_grid(p, grid);
                library
                    .iter()
                    .map(|h| g.distance(h).distance)
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        safe_dist.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let cap = if safe_dist.is_empty() {
            f64::INFINITY
        } else {
            safe_dist[safe_dist.len() / 2]
        };

        PatternMatcher {
            library,
            threshold: base.min(cap).max(0.1),
            grid,
            config,
        }
    }

    /// The calibrated match threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Library size.
    pub fn library_len(&self) -> usize {
        self.library.len()
    }

    /// Distance from a clip's core to the nearest library pattern.
    pub fn nearest_distance(&self, pattern: &Pattern) -> f64 {
        let g = core_grid(pattern, self.grid);
        self.library
            .iter()
            .map(|h| g.distance(h).distance)
            .fold(f64::INFINITY, f64::min)
    }

    /// `true` when the clip fuzzily matches a known hotspot.
    pub fn classify(&self, pattern: &Pattern) -> bool {
        self.nearest_distance(pattern) <= self.threshold
    }

    /// Scans a testing layout with the same clip extraction as the
    /// framework.
    pub fn detect(&self, layout: &Layout, layer: LayerId) -> MatchReport {
        let start = Instant::now();
        let clips = extract_clips(layout, layer, &self.config);
        let reported = clips
            .iter()
            .filter(|c| self.classify(c))
            .map(|c| c.window)
            .collect();
        MatchReport {
            reported,
            clips_extracted: clips.len(),
            runtime: start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_core::Label;
    use hotspot_geom::{Point, Rect};
    use hotspot_layout::ClipShape;

    fn pattern(rects: &[Rect]) -> Pattern {
        Pattern::new(
            ClipShape::ICCAD2012.window_from_core_corner(Point::new(0, 0)),
            rects,
        )
    }

    fn hs(gap: i64) -> Vec<Rect> {
        vec![
            Rect::from_extents(0, 0, 400, 300),
            Rect::from_extents(400 + gap, 0, 800 + gap, 300),
        ]
    }

    fn training() -> TrainingSet {
        let mut ts = TrainingSet::new();
        for i in 0..5 {
            ts.push(pattern(&hs(60 + 8 * i)), Label::Hotspot);
        }
        for i in 0..10 {
            ts.push(pattern(&hs(400 + 10 * i)), Label::NonHotspot);
        }
        ts
    }

    #[test]
    fn matches_seen_and_near_patterns() {
        let m = PatternMatcher::train(&training(), DetectorConfig::default());
        assert!(m.classify(&pattern(&hs(60))), "exact library pattern");
        assert!(m.classify(&pattern(&hs(72))), "near variant");
    }

    #[test]
    fn rejects_distant_patterns() {
        let m = PatternMatcher::train(&training(), DetectorConfig::default());
        assert!(!m.classify(&pattern(&hs(450))), "safe wide gap");
        assert!(
            !m.classify(&pattern(&[Rect::from_extents(0, 0, 1100, 1100)])),
            "solid block"
        );
    }

    #[test]
    fn matches_rotated_library_patterns() {
        // Eq. (1) distance is orientation-minimised, so rotated instances
        // of a known hotspot match.
        let m = PatternMatcher::train(&training(), DetectorConfig::default());
        let rotated: Vec<Rect> = hotspot_geom::Orientation::R90.apply_rects(&hs(60), 1200, 1200);
        assert!(m.classify(&pattern(&rotated)));
    }

    #[test]
    fn threshold_is_calibrated() {
        let m = PatternMatcher::train(&training(), DetectorConfig::default());
        assert!(m.threshold() > 0.0);
        assert!(m.threshold().is_finite());
        assert_eq!(m.library_len(), 5);
    }

    #[test]
    #[should_panic(expected = "needs hotspot patterns")]
    fn empty_training_panics() {
        let _ = PatternMatcher::train(&TrainingSet::new(), DetectorConfig::default());
    }
}
