//! Core/ambit clip-window geometry (Figs. 1–2 of the paper).
//!
//! A training pattern or reported hotspot is a *clip*: a square window whose
//! central *core* carries the significant geometry and whose peripheral
//! *ambit* supplies context. The contest's benchmarks use a 1.2 × 1.2 µm
//! core inside a 4.8 × 4.8 µm clip.

use hotspot_geom::{Coord, Point, Rect};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The shared shape of every clip in a benchmark: core side and clip side.
///
/// ```
/// use hotspot_layout::ClipShape;
/// let shape = ClipShape::new(1200, 4800)?;
/// assert_eq!(shape.ambit(), 1800);
/// # Ok::<(), hotspot_layout::clip::ClipShapeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClipShape {
    core_side: Coord,
    clip_side: Coord,
}

/// Error constructing a [`ClipShape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClipShapeError {
    /// Core or clip side was not positive.
    NonPositiveSide,
    /// The clip side was not larger than the core side.
    ClipNotLarger,
    /// Core and clip sides differ by an odd amount, so the ambit cannot be
    /// symmetric on the integer grid.
    AsymmetricAmbit,
}

impl fmt::Display for ClipShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClipShapeError::NonPositiveSide => write!(f, "clip sides must be positive"),
            ClipShapeError::ClipNotLarger => {
                write!(f, "clip side must exceed core side")
            }
            ClipShapeError::AsymmetricAmbit => {
                write!(f, "clip and core sides must differ by an even amount")
            }
        }
    }
}

impl std::error::Error for ClipShapeError {}

impl ClipShape {
    /// The ICCAD-2012 contest shape: 1.2 µm core, 4.8 µm clip.
    pub const ICCAD2012: ClipShape = ClipShape {
        core_side: 1200,
        clip_side: 4800,
    };

    /// Creates a clip shape.
    ///
    /// # Errors
    ///
    /// Returns [`ClipShapeError`] unless `0 < core_side < clip_side` and the
    /// difference is even.
    pub fn new(core_side: Coord, clip_side: Coord) -> Result<Self, ClipShapeError> {
        if core_side <= 0 || clip_side <= 0 {
            return Err(ClipShapeError::NonPositiveSide);
        }
        if clip_side <= core_side {
            return Err(ClipShapeError::ClipNotLarger);
        }
        if (clip_side - core_side) % 2 != 0 {
            return Err(ClipShapeError::AsymmetricAmbit);
        }
        Ok(ClipShape {
            core_side,
            clip_side,
        })
    }

    /// Core side length (`l_c` in the paper).
    pub fn core_side(self) -> Coord {
        self.core_side
    }

    /// Clip side length.
    pub fn clip_side(self) -> Coord {
        self.clip_side
    }

    /// Ambit width on each side: `(clip − core) / 2`.
    pub fn ambit(self) -> Coord {
        (self.clip_side - self.core_side) / 2
    }

    /// A clip window whose core's bottom-left corner sits at `corner`
    /// (the anchoring used by layout-clip extraction, Fig. 11(b)).
    pub fn window_from_core_corner(self, corner: Point) -> ClipWindow {
        let core = Rect::from_origin_size(corner, self.core_side, self.core_side);
        ClipWindow {
            core,
            clip: core.inflate(self.ambit()),
        }
    }

    /// A clip window centred on `center`.
    pub fn window_centered(self, center: Point) -> ClipWindow {
        let core = Rect::centered_square(center, self.core_side);
        ClipWindow {
            core,
            clip: core.inflate(self.ambit()),
        }
    }
}

/// A placed clip: its full window and the core region inside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClipWindow {
    /// The full clip window (core plus ambit).
    pub clip: Rect,
    /// The core region at the clip's centre.
    pub core: Rect,
}

impl ClipWindow {
    /// The contest's hit rule (Fig. 2): a reported clip *hits* an actual
    /// hotspot when the reported core overlaps the actual core, the reported
    /// clip fully covers the actual core, and the two clips overlap by at
    /// least `min_clip_overlap` of the clip area.
    ///
    /// ```
    /// use hotspot_layout::ClipShape;
    /// use hotspot_geom::Point;
    /// let shape = ClipShape::ICCAD2012;
    /// let actual = shape.window_centered(Point::new(0, 0));
    /// let reported = shape.window_centered(Point::new(300, 100));
    /// assert!(reported.is_hit(&actual, 0.2));
    /// let far = shape.window_centered(Point::new(5000, 5000));
    /// assert!(!far.is_hit(&actual, 0.2));
    /// ```
    pub fn is_hit(&self, actual: &ClipWindow, min_clip_overlap: f64) -> bool {
        self.core.overlaps(&actual.core)
            && self.clip.contains_rect(&actual.core)
            && self.clip.overlap_ratio(&actual.clip) >= min_clip_overlap
    }

    /// Translates the whole window by `delta`.
    pub fn translate(&self, delta: Point) -> ClipWindow {
        ClipWindow {
            clip: self.clip.translate(delta),
            core: self.core.translate(delta),
        }
    }
}

impl fmt::Display for ClipWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "clip {} core {}", self.clip, self.core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iccad_shape() {
        let s = ClipShape::ICCAD2012;
        assert_eq!(s.core_side(), 1200);
        assert_eq!(s.clip_side(), 4800);
        assert_eq!(s.ambit(), 1800);
    }

    #[test]
    fn validation() {
        assert_eq!(ClipShape::new(0, 100), Err(ClipShapeError::NonPositiveSide));
        assert_eq!(ClipShape::new(100, 100), Err(ClipShapeError::ClipNotLarger));
        assert_eq!(
            ClipShape::new(100, 201),
            Err(ClipShapeError::AsymmetricAmbit)
        );
        assert!(ClipShape::new(100, 200).is_ok());
    }

    #[test]
    fn window_from_corner_places_core() {
        let s = ClipShape::new(100, 300).unwrap();
        let w = s.window_from_core_corner(Point::new(1000, 2000));
        assert_eq!(w.core, Rect::from_extents(1000, 2000, 1100, 2100));
        assert_eq!(w.clip, Rect::from_extents(900, 1900, 1200, 2200));
    }

    #[test]
    fn window_centered_is_concentric() {
        let s = ClipShape::new(100, 300).unwrap();
        let w = s.window_centered(Point::new(0, 0));
        assert_eq!(w.core.center(), w.clip.center());
        assert_eq!(w.core.width(), 100);
        assert_eq!(w.clip.width(), 300);
    }

    #[test]
    fn hit_requires_core_overlap() {
        let s = ClipShape::ICCAD2012;
        let actual = s.window_centered(Point::new(0, 0));
        // Core just beyond the actual core but clip still covering it: miss.
        let reported = s.window_centered(Point::new(1300, 0));
        assert!(!reported.core.overlaps(&actual.core));
        assert!(!reported.is_hit(&actual, 0.2));
    }

    #[test]
    fn hit_requires_full_core_coverage() {
        let s = ClipShape::new(1200, 2000).unwrap(); // narrow ambit of 400
        let actual = s.window_centered(Point::new(0, 0));
        // Cores overlap, but the reported clip cannot cover the actual core.
        let reported = s.window_centered(Point::new(1100, 0));
        assert!(reported.core.overlaps(&actual.core));
        assert!(!reported.clip.contains_rect(&actual.core));
        assert!(!reported.is_hit(&actual, 0.0));
    }

    #[test]
    fn hit_requires_min_clip_overlap() {
        let s = ClipShape::ICCAD2012;
        let actual = s.window_centered(Point::new(0, 0));
        let reported = s.window_centered(Point::new(1100, 1100));
        assert!(reported.core.overlaps(&actual.core));
        assert!(reported.clip.contains_rect(&actual.core));
        // Clip overlap ratio ≈ (4800-1100)²/4800² ≈ 0.594.
        assert!(reported.is_hit(&actual, 0.5));
        assert!(!reported.is_hit(&actual, 0.7));
    }

    #[test]
    fn exact_match_is_a_hit() {
        let s = ClipShape::ICCAD2012;
        let w = s.window_centered(Point::new(123, 456));
        assert!(w.is_hit(&w, 1.0));
    }

    #[test]
    fn translate_moves_both_rects() {
        let s = ClipShape::ICCAD2012;
        let w = s
            .window_centered(Point::new(0, 0))
            .translate(Point::new(10, 20));
        assert_eq!(w.core.center(), Point::new(10, 20));
        assert_eq!(w.clip.center(), Point::new(10, 20));
    }
}
