//! GDSII stream reader with hierarchy flattening.
//!
//! Parses `BOUNDARY` and `PATH` elements plus `SREF`/`AREF` structure
//! references with orthogonal transforms (angle ∈ {0°, 90°, 180°, 270°},
//! magnification 1, optional x-axis reflection), and flattens the hierarchy
//! into a single [`Layout`] — the contest's array benchmarks are exactly
//! such arrays of referenced cells. Manhattan `PATH` wires are converted to
//! rectangles.

use super::real::decode_real8;
use super::records::{GdsError, RecordType};
use crate::{LayerId, Layout};
use hotspot_geom::{Coord, Point, Polygon};
use std::collections::HashMap;
use std::path::Path as FsPath;

/// Maximum reference nesting depth (also the cycle guard).
const MAX_DEPTH: usize = 16;

/// Parses a GDSII byte stream into a flat [`Layout`].
///
/// All top structures (structures not referenced by any other) are
/// flattened together; their elements land on their GDSII layers.
///
/// # Errors
///
/// Returns a [`GdsError`] for truncated streams, unknown records,
/// malformed elements, references to undefined structures, cyclic or
/// overly deep hierarchies, and non-orthogonal transforms.
pub fn read_bytes(bytes: &[u8]) -> Result<Layout, GdsError> {
    let mut cursor = Cursor {
        bytes,
        pos: 0,
        last_offset: 0,
    };
    let mut lib_name = String::from("lib");
    let mut structures: Vec<(String, Vec<Element>)> = Vec::new();

    expect(&mut cursor, RecordType::Header, "reading the stream header")?;
    expect(
        &mut cursor,
        RecordType::BgnLib,
        "reading the library header",
    )?;

    loop {
        // EOF before ENDLIB is an unterminated library, not a bare EOF.
        let (rt, payload) = cursor.next_record_in("reading the library body")?;
        match rt {
            RecordType::LibName => {
                lib_name = parse_string(payload)?;
            }
            RecordType::Units => {
                if payload.len() != 16 {
                    return Err(GdsError::BadRecordLength {
                        length: payload.len() as u16 + 4,
                        offset: cursor.last_offset(),
                    });
                }
            }
            RecordType::BgnStr => {
                let (srt, spayload) = cursor.next_record_in("reading a structure name")?;
                if srt != RecordType::StrName {
                    return Err(GdsError::UnexpectedRecord {
                        record: srt,
                        context: "reading a structure name",
                        offset: cursor.last_offset(),
                    });
                }
                let name = parse_string(spayload)?;
                let elements = read_structure(&mut cursor)?;
                structures.push((name, elements));
            }
            RecordType::EndLib => break,
            other => {
                return Err(GdsError::UnexpectedRecord {
                    record: other,
                    context: "reading the library body",
                    offset: cursor.last_offset(),
                })
            }
        }
    }

    // Flatten every top structure (not referenced by any other structure).
    let by_name: HashMap<&str, &Vec<Element>> =
        structures.iter().map(|(n, e)| (n.as_str(), e)).collect();
    let mut referenced: std::collections::HashSet<&str> = std::collections::HashSet::new();
    for (_, elements) in &structures {
        for e in elements {
            if let Element::Ref(r) = e {
                referenced.insert(r.sname.as_str());
            }
        }
    }
    let name = structures
        .first()
        .map(|(n, _)| n.clone())
        .unwrap_or(lib_name);
    let mut layout = Layout::new(name);
    for (sname, _) in &structures {
        if !referenced.contains(sname.as_str()) {
            instantiate(&by_name, sname, Transform::identity(), &mut layout, 0)?;
        }
    }
    Ok(layout)
}

/// Reads a `.gds` file into a layout.
///
/// # Errors
///
/// Propagates I/O failures and parse errors.
pub fn read_file(path: impl AsRef<FsPath>) -> Result<Layout, GdsError> {
    let bytes = std::fs::read(path)?;
    read_bytes(&bytes)
}

// ---------------------------------------------------------------------
// Parsed elements
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Element {
    Boundary {
        layer: LayerId,
        vertices: Vec<Point>,
    },
    Path {
        layer: LayerId,
        points: Vec<Point>,
        width: Coord,
        path_type: u16,
    },
    Ref(Reference),
}

#[derive(Debug, Clone)]
struct Reference {
    sname: String,
    mirror: bool,
    quarter_turns: u8,
    /// Lattice: origin plus per-column/per-row displacement and counts
    /// (1×1 for an SREF).
    origin: Point,
    col_step: Point,
    row_step: Point,
    cols: usize,
    rows: usize,
}

/// An orthogonal placement transform: optional x-axis reflection, then a
/// counterclockwise rotation by quarter turns, then a translation.
#[derive(Debug, Clone, Copy)]
struct Transform {
    mirror: bool,
    quarter_turns: u8,
    translate: Point,
}

impl Transform {
    fn identity() -> Transform {
        Transform {
            mirror: false,
            quarter_turns: 0,
            translate: Point::ORIGIN,
        }
    }

    fn apply(&self, p: Point) -> Point {
        let mut q = p;
        if self.mirror {
            q.y = -q.y;
        }
        for _ in 0..self.quarter_turns % 4 {
            q = Point::new(-q.y, q.x);
        }
        q + self.translate
    }

    /// Composes `child` placed inside `self` (self applied after child).
    fn compose(&self, child: &Transform) -> Transform {
        // Apply child's mirror/rotation first, then self's.
        let translate = self.apply(child.translate);
        let (mirror, quarter_turns) = if self.mirror {
            // Reflection conjugates the rotation direction.
            (
                !child.mirror,
                (self.quarter_turns + 4 - child.quarter_turns % 4) % 4,
            )
        } else {
            (child.mirror, (self.quarter_turns + child.quarter_turns) % 4)
        };
        Transform {
            mirror,
            quarter_turns,
            translate,
        }
    }
}

fn instantiate(
    structures: &HashMap<&str, &Vec<Element>>,
    name: &str,
    transform: Transform,
    layout: &mut Layout,
    depth: usize,
) -> Result<(), GdsError> {
    if depth > MAX_DEPTH {
        return Err(GdsError::RecursionLimit(name.to_string()));
    }
    let elements = structures
        .get(name)
        .ok_or_else(|| GdsError::UnknownStructure(name.to_string()))?;
    for element in elements.iter() {
        match element {
            Element::Boundary { layer, vertices } => {
                let pts: Vec<Point> = vertices.iter().map(|&p| transform.apply(p)).collect();
                let polygon =
                    Polygon::new(pts).map_err(|e| GdsError::BadBoundary(e.to_string()))?;
                layout.add_polygon(*layer, polygon);
            }
            Element::Path {
                layer,
                points,
                width,
                path_type,
            } => {
                let pts: Vec<Point> = points.iter().map(|&p| transform.apply(p)).collect();
                for rect in path_to_rects(&pts, *width, *path_type)? {
                    layout.add_rect(*layer, rect);
                }
            }
            Element::Ref(r) => {
                for col in 0..r.cols {
                    for row in 0..r.rows {
                        let origin = Point::new(
                            r.origin.x + col as Coord * r.col_step.x + row as Coord * r.row_step.x,
                            r.origin.y + col as Coord * r.col_step.y + row as Coord * r.row_step.y,
                        );
                        let child = Transform {
                            mirror: r.mirror,
                            quarter_turns: r.quarter_turns,
                            translate: origin,
                        };
                        let placed = transform.compose(&child);
                        instantiate(structures, &r.sname, placed, layout, depth + 1)?;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Converts a Manhattan path centreline into per-segment rectangles.
///
/// Path type 0 (butt ends, the default) and 2 (ends extended by half the
/// width) are supported.
fn path_to_rects(
    points: &[Point],
    width: Coord,
    path_type: u16,
) -> Result<Vec<hotspot_geom::Rect>, GdsError> {
    if points.len() < 2 {
        return Err(GdsError::BadPath(format!(
            "path needs at least 2 points, got {}",
            points.len()
        )));
    }
    if width <= 0 {
        return Err(GdsError::BadPath(format!("non-positive width {width}")));
    }
    if !matches!(path_type, 0 | 2) {
        return Err(GdsError::BadPath(format!(
            "unsupported path type {path_type} (0 and 2 supported)"
        )));
    }
    let half = width / 2;
    let ext = if path_type == 2 { half } else { 0 };
    let mut out = Vec::with_capacity(points.len() - 1);
    for seg in points.windows(2) {
        let (a, b) = (seg[0], seg[1]);
        if a.x != b.x && a.y != b.y {
            return Err(GdsError::BadPath(format!(
                "non-Manhattan segment {a} -> {b}"
            )));
        }
        if a == b {
            continue;
        }
        let rect = if a.y == b.y {
            let (x0, x1) = (a.x.min(b.x), a.x.max(b.x));
            hotspot_geom::Rect::from_extents(x0 - ext, a.y - half, x1 + ext, a.y + half)
        } else {
            let (y0, y1) = (a.y.min(b.y), a.y.max(b.y));
            hotspot_geom::Rect::from_extents(a.x - half, y0 - ext, a.x + half, y1 + ext)
        };
        out.push(rect);
    }
    if out.is_empty() {
        return Err(GdsError::BadPath("path has zero length".into()));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Record-level parsing
// ---------------------------------------------------------------------

fn read_structure(cursor: &mut Cursor<'_>) -> Result<Vec<Element>, GdsError> {
    let mut elements = Vec::new();
    loop {
        let (rt, _) = cursor.next_record_in("reading structure elements")?;
        match rt {
            RecordType::Boundary => elements.push(read_boundary(cursor)?),
            RecordType::Path => elements.push(read_path(cursor)?),
            RecordType::Sref => elements.push(read_reference(cursor, false)?),
            RecordType::Aref => elements.push(read_reference(cursor, true)?),
            RecordType::EndStr => return Ok(elements),
            other => {
                return Err(GdsError::UnexpectedRecord {
                    record: other,
                    context: "reading structure elements",
                    offset: cursor.last_offset(),
                })
            }
        }
    }
}

fn read_boundary(cursor: &mut Cursor<'_>) -> Result<Element, GdsError> {
    let mut layer: Option<LayerId> = None;
    let mut vertices: Option<Vec<Point>> = None;
    loop {
        let (rt, payload) = cursor.next_record_in("reading a BOUNDARY")?;
        match rt {
            RecordType::Layer => layer = Some(parse_layer(payload, cursor.last_offset())?),
            RecordType::DataType => {}
            RecordType::Xy => vertices = Some(parse_points(payload)?),
            RecordType::EndEl => break,
            other => {
                return Err(GdsError::UnexpectedRecord {
                    record: other,
                    context: "reading a BOUNDARY",
                    offset: cursor.last_offset(),
                })
            }
        }
    }
    let layer = layer.ok_or_else(|| GdsError::BadBoundary("missing LAYER".into()))?;
    let vertices = vertices.ok_or_else(|| GdsError::BadBoundary("missing XY".into()))?;
    if vertices.len() < 4 {
        return Err(GdsError::BadBoundary(format!(
            "only {} vertices",
            vertices.len()
        )));
    }
    Ok(Element::Boundary { layer, vertices })
}

fn read_path(cursor: &mut Cursor<'_>) -> Result<Element, GdsError> {
    let mut layer: Option<LayerId> = None;
    let mut points: Option<Vec<Point>> = None;
    let mut width: Coord = 0;
    let mut path_type: u16 = 0;
    loop {
        let (rt, payload) = cursor.next_record_in("reading a PATH")?;
        match rt {
            RecordType::Layer => layer = Some(parse_layer(payload, cursor.last_offset())?),
            RecordType::DataType => {}
            RecordType::Width => {
                if payload.len() != 4 {
                    return Err(GdsError::BadRecordLength {
                        length: payload.len() as u16 + 4,
                        offset: cursor.last_offset(),
                    });
                }
                width =
                    i32::from_be_bytes([payload[0], payload[1], payload[2], payload[3]]) as Coord;
            }
            RecordType::PathType => {
                if payload.len() != 2 {
                    return Err(GdsError::BadRecordLength {
                        length: payload.len() as u16 + 4,
                        offset: cursor.last_offset(),
                    });
                }
                path_type = u16::from_be_bytes([payload[0], payload[1]]);
            }
            RecordType::Xy => points = Some(parse_points(payload)?),
            RecordType::EndEl => break,
            other => {
                return Err(GdsError::UnexpectedRecord {
                    record: other,
                    context: "reading a PATH",
                    offset: cursor.last_offset(),
                })
            }
        }
    }
    Ok(Element::Path {
        layer: layer.ok_or_else(|| GdsError::BadPath("missing LAYER".into()))?,
        points: points.ok_or_else(|| GdsError::BadPath("missing XY".into()))?,
        width,
        path_type,
    })
}

fn read_reference(cursor: &mut Cursor<'_>, is_array: bool) -> Result<Element, GdsError> {
    let mut sname: Option<String> = None;
    let mut mirror = false;
    let mut quarter_turns: u8 = 0;
    let mut colrow: Option<(usize, usize)> = None;
    let mut points: Option<Vec<Point>> = None;
    loop {
        let (rt, payload) = cursor.next_record_in("reading a reference")?;
        match rt {
            RecordType::SName => sname = Some(parse_string(payload)?),
            RecordType::STrans => {
                if payload.len() != 2 {
                    return Err(GdsError::BadRecordLength {
                        length: payload.len() as u16 + 4,
                        offset: cursor.last_offset(),
                    });
                }
                let bits = u16::from_be_bytes([payload[0], payload[1]]);
                mirror = bits & 0x8000 != 0;
                if bits & 0x0006 != 0 {
                    return Err(GdsError::UnsupportedTransform(
                        "absolute magnification/angle flags".into(),
                    ));
                }
            }
            RecordType::Mag => {
                let mag = parse_real8(payload, cursor.last_offset())?;
                if (mag - 1.0).abs() > 1e-9 {
                    return Err(GdsError::UnsupportedTransform(format!(
                        "magnification {mag} (only 1.0 supported)"
                    )));
                }
            }
            RecordType::Angle => {
                let angle = parse_real8(payload, cursor.last_offset())?;
                let quarters = angle / 90.0;
                if (quarters - quarters.round()).abs() > 1e-9 {
                    return Err(GdsError::UnsupportedTransform(format!(
                        "angle {angle}° (only multiples of 90° supported)"
                    )));
                }
                quarter_turns = (quarters.round() as i64).rem_euclid(4) as u8;
            }
            RecordType::ColRow => {
                if payload.len() != 4 {
                    return Err(GdsError::BadRecordLength {
                        length: payload.len() as u16 + 4,
                        offset: cursor.last_offset(),
                    });
                }
                let cols = i16::from_be_bytes([payload[0], payload[1]]);
                let rows = i16::from_be_bytes([payload[2], payload[3]]);
                if cols <= 0 || rows <= 0 {
                    return Err(GdsError::UnsupportedTransform(format!(
                        "non-positive array dimensions {cols}x{rows}"
                    )));
                }
                colrow = Some((cols as usize, rows as usize));
            }
            RecordType::Xy => points = Some(parse_points(payload)?),
            RecordType::EndEl => break,
            other => {
                return Err(GdsError::UnexpectedRecord {
                    record: other,
                    context: "reading a reference",
                    offset: cursor.last_offset(),
                })
            }
        }
    }
    let sname = sname.ok_or_else(|| GdsError::UnknownStructure("<missing SNAME>".into()))?;
    let points = points.ok_or_else(|| GdsError::BadBoundary("reference missing XY".into()))?;
    let (origin, col_step, row_step, cols, rows) = if is_array {
        let (cols, rows) =
            colrow.ok_or_else(|| GdsError::BadBoundary("AREF missing COLROW".into()))?;
        if points.len() != 3 {
            return Err(GdsError::BadBoundary(format!(
                "AREF XY needs 3 points, got {}",
                points.len()
            )));
        }
        let origin = points[0];
        let col_vec = points[1] - origin;
        let row_vec = points[2] - origin;
        let col_step = Point::new(col_vec.x / cols as Coord, col_vec.y / cols as Coord);
        let row_step = Point::new(row_vec.x / rows as Coord, row_vec.y / rows as Coord);
        (origin, col_step, row_step, cols, rows)
    } else {
        if points.len() != 1 {
            return Err(GdsError::BadBoundary(format!(
                "SREF XY needs 1 point, got {}",
                points.len()
            )));
        }
        (points[0], Point::ORIGIN, Point::ORIGIN, 1, 1)
    };
    Ok(Element::Ref(Reference {
        sname,
        mirror,
        quarter_turns,
        origin,
        col_step,
        row_step,
        cols,
        rows,
    }))
}

fn parse_layer(payload: &[u8], offset: usize) -> Result<LayerId, GdsError> {
    if payload.len() != 2 {
        return Err(GdsError::BadRecordLength {
            length: payload.len() as u16 + 4,
            offset,
        });
    }
    let n = i16::from_be_bytes([payload[0], payload[1]]);
    if n < 0 {
        return Err(GdsError::BadBoundary(format!("negative layer {n}")));
    }
    Ok(LayerId::new(n as u16))
}

fn parse_points(payload: &[u8]) -> Result<Vec<Point>, GdsError> {
    if !payload.len().is_multiple_of(8) {
        return Err(GdsError::BadBoundary(format!(
            "XY payload of {} bytes is not a whole number of points",
            payload.len()
        )));
    }
    Ok(payload
        .chunks_exact(8)
        .map(|c| {
            Point::new(
                i32::from_be_bytes([c[0], c[1], c[2], c[3]]) as Coord,
                i32::from_be_bytes([c[4], c[5], c[6], c[7]]) as Coord,
            )
        })
        .collect())
}

fn parse_real8(payload: &[u8], offset: usize) -> Result<f64, GdsError> {
    if payload.len() != 8 {
        return Err(GdsError::BadRecordLength {
            length: payload.len() as u16 + 4,
            offset,
        });
    }
    let mut b = [0u8; 8];
    b.copy_from_slice(payload);
    Ok(decode_real8(b))
}

fn parse_string(payload: &[u8]) -> Result<String, GdsError> {
    let trimmed: Vec<u8> = payload.iter().copied().take_while(|&b| b != 0).collect();
    String::from_utf8(trimmed).map_err(|_| GdsError::BadString)
}

fn expect(cursor: &mut Cursor<'_>, want: RecordType, ctx: &'static str) -> Result<(), GdsError> {
    let (rt, _) = cursor.next_record()?;
    if rt != want {
        return Err(GdsError::UnexpectedRecord {
            record: rt,
            context: ctx,
            offset: cursor.last_offset(),
        });
    }
    Ok(())
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Byte offset of the header of the most recently read record, for
    /// errors raised while validating its payload.
    last_offset: usize,
}

impl<'a> Cursor<'a> {
    /// Reads the next record header and returns its type and payload slice.
    ///
    /// Every failure carries the byte offset of the offending header: a
    /// header that would run past the end of the stream, a declared length
    /// that is invalid (< 4 or odd) or overruns the remaining bytes, or an
    /// unknown record code.
    fn next_record(&mut self) -> Result<(RecordType, &'a [u8]), GdsError> {
        let offset = self.pos;
        self.last_offset = offset;
        if self.pos + 4 > self.bytes.len() {
            return Err(GdsError::UnexpectedEof { offset });
        }
        let len = u16::from_be_bytes([self.bytes[self.pos], self.bytes[self.pos + 1]]) as usize;
        let code = u16::from_be_bytes([self.bytes[self.pos + 2], self.bytes[self.pos + 3]]);
        if len < 4 || !len.is_multiple_of(2) {
            return Err(GdsError::BadRecordLength {
                length: len as u16,
                offset,
            });
        }
        if self.pos + len > self.bytes.len() {
            return Err(GdsError::UnexpectedEof { offset });
        }
        let rt = RecordType::from_code(code).ok_or(GdsError::UnsupportedRecord { code, offset })?;
        let payload = &self.bytes[self.pos + 4..self.pos + len];
        self.pos += len;
        Ok((rt, payload))
    }

    /// [`next_record`](Self::next_record) inside an open structure or
    /// element: running out of bytes here is an *unterminated* construct
    /// (the terminating `ENDSTR`/`ENDEL` never arrived), which is reported
    /// as such rather than a bare EOF.
    fn next_record_in(
        &mut self,
        context: &'static str,
    ) -> Result<(RecordType, &'a [u8]), GdsError> {
        self.next_record().map_err(|e| match e {
            GdsError::UnexpectedEof { offset } => GdsError::Unterminated { context, offset },
            other => other,
        })
    }

    /// Byte offset of the most recently read record header.
    fn last_offset(&self) -> usize {
        self.last_offset
    }
}

#[cfg(test)]
mod tests {
    use super::super::writer::write_bytes;
    use super::*;
    use hotspot_geom::Rect;

    fn sample_layout() -> Layout {
        let mut l = Layout::new("sample");
        l.add_rect(LayerId::new(1), Rect::from_extents(0, 0, 100, 40));
        l.add_rect(LayerId::new(1), Rect::from_extents(-50, -20, 0, 0));
        l.add_polygon(
            LayerId::new(2),
            Polygon::new(vec![
                Point::new(0, 0),
                Point::new(30, 0),
                Point::new(30, 10),
                Point::new(10, 10),
                Point::new(10, 30),
                Point::new(0, 30),
            ])
            .unwrap(),
        );
        l
    }

    #[test]
    fn roundtrip_preserves_layout() {
        let layout = sample_layout();
        let bytes = write_bytes(&layout).unwrap();
        let back = read_bytes(&bytes).unwrap();
        assert_eq!(back, layout);
    }

    #[test]
    fn empty_layout_roundtrip() {
        let layout = Layout::new("empty");
        let back = read_bytes(&write_bytes(&layout).unwrap()).unwrap();
        assert_eq!(back.polygon_count(), 0);
        assert_eq!(back.name(), "empty");
    }

    #[test]
    fn truncated_stream_errors() {
        let bytes = write_bytes(&sample_layout()).unwrap();
        for cut in [1, 3, 10, bytes.len() - 2] {
            assert!(
                read_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn garbage_errors_cleanly() {
        assert!(matches!(
            read_bytes(&[]),
            Err(GdsError::UnexpectedEof { offset: 0 })
        ));
        let garbage = vec![0xAB; 64];
        assert!(read_bytes(&garbage).is_err());
    }

    #[test]
    fn bad_record_length_detected() {
        let bytes = [0x00, 0x05, 0x00, 0x02, 0x00];
        assert!(matches!(
            read_bytes(&bytes),
            Err(GdsError::BadRecordLength {
                length: 5,
                offset: 0
            })
        ));
    }

    #[test]
    fn truncation_errors_carry_the_failing_offset() {
        let bytes = write_bytes(&sample_layout()).unwrap();
        for cut in [5, 10, 40, bytes.len() - 2] {
            let err = read_bytes(&bytes[..cut]).unwrap_err();
            let offset = err.offset().expect("truncation errors carry an offset");
            assert!(offset <= cut, "offset {offset} past the cut {cut}");
        }
    }

    #[test]
    fn unterminated_structure_is_distinguished_from_eof() {
        // A library whose structure never reaches ENDSTR.
        let mut b = StreamBuilder::new();
        b.begin_structure("open");
        let bytes = b.0.clone();
        assert!(matches!(
            read_bytes(&bytes),
            Err(GdsError::Unterminated {
                context: "reading structure elements",
                ..
            })
        ));
        // An element that never reaches ENDEL.
        let mut b = StreamBuilder::new();
        b.begin_structure("open");
        b.record(RecordType::Boundary, &[]);
        b.record(RecordType::Layer, &1i16.to_be_bytes());
        let bytes = b.0.clone();
        assert!(matches!(
            read_bytes(&bytes),
            Err(GdsError::Unterminated {
                context: "reading a BOUNDARY",
                ..
            })
        ));
    }

    #[test]
    fn boundary_without_layer_errors() {
        let mut l = Layout::new("x");
        l.add_rect(LayerId::new(1), Rect::from_extents(0, 0, 8, 8));
        let mut bytes = write_bytes(&l).unwrap();
        let pos = bytes
            .windows(4)
            .position(|w| w == [0x00, 0x06, 0x0D, 0x02])
            .unwrap();
        bytes.drain(pos..pos + 6);
        assert!(matches!(read_bytes(&bytes), Err(GdsError::BadBoundary(_))));
    }

    #[test]
    fn reads_file_written_to_disk() {
        let layout = sample_layout();
        let dir = std::env::temp_dir().join("hotspot_gds_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.gds");
        super::super::writer::write_file(&layout, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back, layout);
        std::fs::remove_file(&path).ok();
    }

    // -------------------------------------------------------------
    // Hand-built streams for hierarchy and paths
    // -------------------------------------------------------------

    struct StreamBuilder(Vec<u8>);

    impl StreamBuilder {
        fn new() -> Self {
            let mut b = StreamBuilder(Vec::new());
            b.record(RecordType::Header, &600i16.to_be_bytes());
            b.record(RecordType::BgnLib, &[0u8; 24]);
            b.string(RecordType::LibName, "lib");
            b.record(RecordType::Units, &[0u8; 16]);
            b
        }

        fn record(&mut self, rt: RecordType, payload: &[u8]) -> &mut Self {
            self.0
                .extend_from_slice(&((payload.len() + 4) as u16).to_be_bytes());
            self.0.extend_from_slice(&rt.code().to_be_bytes());
            self.0.extend_from_slice(payload);
            self
        }

        fn string(&mut self, rt: RecordType, s: &str) -> &mut Self {
            let mut bytes = s.as_bytes().to_vec();
            if !bytes.len().is_multiple_of(2) {
                bytes.push(0);
            }
            self.record(rt, &bytes)
        }

        fn begin_structure(&mut self, name: &str) -> &mut Self {
            self.record(RecordType::BgnStr, &[0u8; 24]);
            self.string(RecordType::StrName, name)
        }

        fn end_structure(&mut self) -> &mut Self {
            self.record(RecordType::EndStr, &[])
        }

        fn rect(&mut self, layer: i16, r: Rect) -> &mut Self {
            self.record(RecordType::Boundary, &[]);
            self.record(RecordType::Layer, &layer.to_be_bytes());
            self.record(RecordType::DataType, &0i16.to_be_bytes());
            let mut xy = Vec::new();
            let corners = [
                r.min(),
                Point::new(r.max().x, r.min().y),
                r.max(),
                Point::new(r.min().x, r.max().y),
                r.min(),
            ];
            for p in corners {
                xy.extend_from_slice(&(p.x as i32).to_be_bytes());
                xy.extend_from_slice(&(p.y as i32).to_be_bytes());
            }
            self.record(RecordType::Xy, &xy);
            self.record(RecordType::EndEl, &[])
        }

        fn xy(&mut self, pts: &[(i32, i32)]) -> &mut Self {
            let mut xy = Vec::new();
            for &(x, y) in pts {
                xy.extend_from_slice(&x.to_be_bytes());
                xy.extend_from_slice(&y.to_be_bytes());
            }
            self.record(RecordType::Xy, &xy)
        }

        fn finish(&mut self) -> Vec<u8> {
            self.record(RecordType::EndLib, &[]);
            self.0.clone()
        }
    }

    #[test]
    fn sref_translates_child_geometry() {
        let mut b = StreamBuilder::new();
        b.begin_structure("cell")
            .rect(1, Rect::from_extents(0, 0, 10, 10))
            .end_structure();
        b.begin_structure("top");
        b.record(RecordType::Sref, &[]);
        b.string(RecordType::SName, "cell");
        b.xy(&[(100, 200)]);
        b.record(RecordType::EndEl, &[]);
        b.end_structure();
        let layout = read_bytes(&b.finish()).unwrap();
        assert_eq!(layout.polygon_count(), 1);
        assert_eq!(
            layout.polygons(LayerId::new(1))[0].bbox(),
            Rect::from_extents(100, 200, 110, 210)
        );
    }

    #[test]
    fn sref_rotation_and_mirror() {
        // A 10×20 rect rotated 90° ccw becomes 20×10.
        let mut b = StreamBuilder::new();
        b.begin_structure("cell")
            .rect(1, Rect::from_extents(0, 0, 10, 20))
            .end_structure();
        b.begin_structure("top");
        b.record(RecordType::Sref, &[]);
        b.string(RecordType::SName, "cell");
        b.record(RecordType::STrans, &0u16.to_be_bytes());
        b.record(RecordType::Angle, &super::super::real::encode_real8(90.0));
        b.xy(&[(0, 0)]);
        b.record(RecordType::EndEl, &[]);
        b.end_structure();
        let layout = read_bytes(&b.finish()).unwrap();
        let bbox = layout.polygons(LayerId::new(1))[0].bbox();
        assert_eq!(bbox, Rect::from_extents(-20, 0, 0, 10));
    }

    #[test]
    fn aref_expands_full_array() {
        let mut b = StreamBuilder::new();
        b.begin_structure("cell")
            .rect(1, Rect::from_extents(0, 0, 10, 10))
            .end_structure();
        b.begin_structure("top");
        b.record(RecordType::Aref, &[]);
        b.string(RecordType::SName, "cell");
        let colrow: [u8; 4] = {
            let mut c = [0u8; 4];
            c[..2].copy_from_slice(&3i16.to_be_bytes());
            c[2..].copy_from_slice(&2i16.to_be_bytes());
            c
        };
        b.record(RecordType::ColRow, &colrow);
        // Origin (0,0); 3 columns spanning 300 in x; 2 rows spanning 100 in y.
        b.xy(&[(0, 0), (300, 0), (0, 100)]);
        b.record(RecordType::EndEl, &[]);
        b.end_structure();
        let layout = read_bytes(&b.finish()).unwrap();
        assert_eq!(layout.polygon_count(), 6);
        // The (2,1) instance sits at (200, 50).
        assert!(layout
            .polygons(LayerId::new(1))
            .iter()
            .any(|p| p.bbox() == Rect::from_extents(200, 50, 210, 60)));
    }

    #[test]
    fn nested_references_flatten_recursively() {
        let mut b = StreamBuilder::new();
        b.begin_structure("leaf")
            .rect(1, Rect::from_extents(0, 0, 5, 5))
            .end_structure();
        b.begin_structure("mid");
        b.record(RecordType::Sref, &[]);
        b.string(RecordType::SName, "leaf");
        b.xy(&[(10, 0)]);
        b.record(RecordType::EndEl, &[]);
        b.end_structure();
        b.begin_structure("top");
        b.record(RecordType::Sref, &[]);
        b.string(RecordType::SName, "mid");
        b.xy(&[(0, 100)]);
        b.record(RecordType::EndEl, &[]);
        b.end_structure();
        let layout = read_bytes(&b.finish()).unwrap();
        assert_eq!(layout.polygon_count(), 1);
        assert_eq!(
            layout.polygons(LayerId::new(1))[0].bbox(),
            Rect::from_extents(10, 100, 15, 105)
        );
    }

    #[test]
    fn cyclic_references_error() {
        let mut b = StreamBuilder::new();
        b.begin_structure("a");
        b.record(RecordType::Sref, &[]);
        b.string(RecordType::SName, "b");
        b.xy(&[(0, 0)]);
        b.record(RecordType::EndEl, &[]);
        b.end_structure();
        b.begin_structure("b");
        b.record(RecordType::Sref, &[]);
        b.string(RecordType::SName, "a");
        b.xy(&[(0, 0)]);
        b.record(RecordType::EndEl, &[]);
        b.end_structure();
        // Both are referenced, so neither is a top; flattening emits an
        // empty layout (no tops) rather than recursing forever.
        let layout = read_bytes(&b.finish()).unwrap();
        assert_eq!(layout.polygon_count(), 0);
    }

    #[test]
    fn unknown_reference_errors() {
        let mut b = StreamBuilder::new();
        b.begin_structure("top");
        b.record(RecordType::Sref, &[]);
        b.string(RecordType::SName, "ghost");
        b.xy(&[(0, 0)]);
        b.record(RecordType::EndEl, &[]);
        b.end_structure();
        assert!(matches!(
            read_bytes(&b.finish()),
            Err(GdsError::UnknownStructure(_))
        ));
    }

    #[test]
    fn non_orthogonal_angle_errors() {
        let mut b = StreamBuilder::new();
        b.begin_structure("cell")
            .rect(1, Rect::from_extents(0, 0, 10, 10))
            .end_structure();
        b.begin_structure("top");
        b.record(RecordType::Sref, &[]);
        b.string(RecordType::SName, "cell");
        b.record(RecordType::Angle, &super::super::real::encode_real8(45.0));
        b.xy(&[(0, 0)]);
        b.record(RecordType::EndEl, &[]);
        b.end_structure();
        assert!(matches!(
            read_bytes(&b.finish()),
            Err(GdsError::UnsupportedTransform(_))
        ));
    }

    #[test]
    fn path_converts_to_rects() {
        let mut b = StreamBuilder::new();
        b.begin_structure("top");
        b.record(RecordType::Path, &[]);
        b.record(RecordType::Layer, &1i16.to_be_bytes());
        b.record(RecordType::DataType, &0i16.to_be_bytes());
        b.record(RecordType::Width, &40i32.to_be_bytes());
        // An L-shaped wire: right 100, then up 80.
        b.xy(&[(0, 0), (100, 0), (100, 80)]);
        b.record(RecordType::EndEl, &[]);
        b.end_structure();
        let layout = read_bytes(&b.finish()).unwrap();
        assert_eq!(layout.polygon_count(), 2);
        let bboxes: Vec<Rect> = layout
            .polygons(LayerId::new(1))
            .iter()
            .map(|p| p.bbox())
            .collect();
        assert!(bboxes.contains(&Rect::from_extents(0, -20, 100, 20)));
        assert!(bboxes.contains(&Rect::from_extents(80, 0, 120, 80)));
    }

    #[test]
    fn diagonal_path_errors() {
        let mut b = StreamBuilder::new();
        b.begin_structure("top");
        b.record(RecordType::Path, &[]);
        b.record(RecordType::Layer, &1i16.to_be_bytes());
        b.record(RecordType::Width, &40i32.to_be_bytes());
        b.xy(&[(0, 0), (50, 50)]);
        b.record(RecordType::EndEl, &[]);
        b.end_structure();
        assert!(matches!(read_bytes(&b.finish()), Err(GdsError::BadPath(_))));
    }

    #[test]
    fn path_type2_extends_ends() {
        let mut b = StreamBuilder::new();
        b.begin_structure("top");
        b.record(RecordType::Path, &[]);
        b.record(RecordType::Layer, &1i16.to_be_bytes());
        b.record(RecordType::Width, &40i32.to_be_bytes());
        b.record(RecordType::PathType, &2u16.to_be_bytes());
        b.xy(&[(0, 0), (100, 0)]);
        b.record(RecordType::EndEl, &[]);
        b.end_structure();
        let layout = read_bytes(&b.finish()).unwrap();
        assert_eq!(
            layout.polygons(LayerId::new(1))[0].bbox(),
            Rect::from_extents(-20, -20, 120, 20)
        );
    }

    #[test]
    fn multiple_top_structures_merge() {
        let mut b = StreamBuilder::new();
        b.begin_structure("top_a")
            .rect(1, Rect::from_extents(0, 0, 10, 10))
            .end_structure();
        b.begin_structure("top_b")
            .rect(2, Rect::from_extents(50, 50, 60, 60))
            .end_structure();
        let layout = read_bytes(&b.finish()).unwrap();
        assert_eq!(layout.polygon_count(), 2);
        assert_eq!(layout.layers().count(), 2);
    }
}
