//! GDSII stream-format reader and writer.
//!
//! Implements the subset of the GDSII binary stream format needed to
//! round-trip flat hotspot-benchmark layouts: one library, one structure,
//! `BOUNDARY` elements with `LAYER`/`DATATYPE`/`XY`. This replaces the
//! proprietary Anuvad library the paper used for layout I/O.
//!
//! The database unit is 1 nm (`UNITS` is written as 0.001 user units per
//! database unit, 1e-9 m per database unit).
//!
//! # Examples
//!
//! ```
//! use hotspot_layout::{gdsii, LayerId, Layout};
//! use hotspot_geom::Rect;
//!
//! let mut layout = Layout::new("top");
//! layout.add_rect(LayerId::new(5), Rect::from_extents(-100, 0, 250, 40));
//! let bytes = gdsii::write_bytes(&layout)?;
//! let back = gdsii::read_bytes(&bytes)?;
//! assert_eq!(back, layout);
//! # Ok::<(), gdsii::GdsError>(())
//! ```

mod reader;
mod real;
mod records;
mod writer;

pub use reader::{read_bytes, read_file};
pub use real::{decode_real8, encode_real8};
pub use records::{GdsError, RecordType};
pub use writer::{write_bytes, write_file};
