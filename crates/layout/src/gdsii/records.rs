//! GDSII record headers and the error type shared by reader and writer.

use std::fmt;

/// GDSII record types used by this implementation.
///
/// The two-byte discriminant is `record_type << 8 | data_type`, matching the
/// on-disk header layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
#[allow(missing_docs)]
pub enum RecordType {
    Header = 0x0002,
    BgnLib = 0x0102,
    LibName = 0x0206,
    Units = 0x0305,
    EndLib = 0x0400,
    BgnStr = 0x0502,
    StrName = 0x0606,
    EndStr = 0x0700,
    Boundary = 0x0800,
    Path = 0x0900,
    Sref = 0x0A00,
    Aref = 0x0B00,
    Layer = 0x0D02,
    DataType = 0x0E02,
    Width = 0x0F03,
    Xy = 0x1003,
    EndEl = 0x1100,
    SName = 0x1206,
    ColRow = 0x1302,
    PathType = 0x2102,
    STrans = 0x1A01,
    Mag = 0x1B05,
    Angle = 0x1C05,
}

impl RecordType {
    /// Parses the two-byte record/data-type pair from a record header.
    pub fn from_code(code: u16) -> Option<RecordType> {
        Some(match code {
            0x0002 => RecordType::Header,
            0x0102 => RecordType::BgnLib,
            0x0206 => RecordType::LibName,
            0x0305 => RecordType::Units,
            0x0400 => RecordType::EndLib,
            0x0502 => RecordType::BgnStr,
            0x0606 => RecordType::StrName,
            0x0700 => RecordType::EndStr,
            0x0800 => RecordType::Boundary,
            0x0900 => RecordType::Path,
            0x0A00 => RecordType::Sref,
            0x0B00 => RecordType::Aref,
            0x0D02 => RecordType::Layer,
            0x0E02 => RecordType::DataType,
            0x0F03 => RecordType::Width,
            0x1003 => RecordType::Xy,
            0x1100 => RecordType::EndEl,
            0x1206 => RecordType::SName,
            0x1302 => RecordType::ColRow,
            0x2102 => RecordType::PathType,
            0x1A01 => RecordType::STrans,
            0x1B05 => RecordType::Mag,
            0x1C05 => RecordType::Angle,
            _ => return None,
        })
    }

    /// The two-byte header code.
    pub fn code(self) -> u16 {
        self as u16
    }
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Error reading or writing a GDSII stream.
///
/// Cursor-level variants carry the byte offset of the offending record
/// header ([`GdsError::offset`]), so a truncated or corrupted file can be
/// located without re-parsing.
#[derive(Debug)]
pub enum GdsError {
    /// The stream ended in the middle of a record (or before the library
    /// was complete).
    UnexpectedEof {
        /// Byte offset where the next record header was expected.
        offset: usize,
    },
    /// The stream ended inside an open structure or element.
    Unterminated {
        /// What was being read when the stream ran out.
        context: &'static str,
        /// Byte offset where the next record header was expected.
        offset: usize,
    },
    /// A record header declared an invalid length (< 4 or odd), or a
    /// fixed-size payload had the wrong length.
    BadRecordLength {
        /// The declared record length.
        length: u16,
        /// Byte offset of the record header.
        offset: usize,
    },
    /// An unknown or unsupported record type was encountered.
    UnsupportedRecord {
        /// The two-byte record/data-type code.
        code: u16,
        /// Byte offset of the record header.
        offset: usize,
    },
    /// A record appeared out of the expected sequence.
    UnexpectedRecord {
        /// The record that appeared.
        record: RecordType,
        /// What the reader was doing when it appeared.
        context: &'static str,
        /// Byte offset of the record header.
        offset: usize,
    },
    /// An `XY` record did not describe a closed rectilinear boundary.
    BadBoundary(String),
    /// A `PATH` element was malformed or non-Manhattan.
    BadPath(String),
    /// A reference named a structure the library does not define.
    UnknownStructure(String),
    /// Structure references nest deeper than the flattening limit
    /// (or form a cycle).
    RecursionLimit(String),
    /// A reference uses a transform this subset cannot flatten exactly
    /// (non-orthogonal angle or magnification ≠ 1).
    UnsupportedTransform(String),
    /// A string record contained invalid bytes.
    BadString,
    /// An I/O error from the underlying file.
    Io(std::io::Error),
}

impl GdsError {
    /// The byte offset of the offending record header, for the
    /// cursor-level variants that know where in the stream they fired.
    pub fn offset(&self) -> Option<usize> {
        match self {
            GdsError::UnexpectedEof { offset }
            | GdsError::Unterminated { offset, .. }
            | GdsError::BadRecordLength { offset, .. }
            | GdsError::UnsupportedRecord { offset, .. }
            | GdsError::UnexpectedRecord { offset, .. } => Some(*offset),
            _ => None,
        }
    }
}

impl fmt::Display for GdsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GdsError::UnexpectedEof { offset } => {
                write!(f, "unexpected end of GDSII stream at byte {offset}")
            }
            GdsError::Unterminated { context, offset } => {
                write!(
                    f,
                    "GDSII stream ended at byte {offset} while {context} (unterminated)"
                )
            }
            GdsError::BadRecordLength { length, offset } => {
                write!(f, "invalid GDSII record length {length} at byte {offset}")
            }
            GdsError::UnsupportedRecord { code, offset } => {
                write!(f, "unsupported GDSII record 0x{code:04X} at byte {offset}")
            }
            GdsError::UnexpectedRecord {
                record,
                context,
                offset,
            } => {
                write!(
                    f,
                    "unexpected GDSII record {record} at byte {offset} while {context}"
                )
            }
            GdsError::BadBoundary(msg) => write!(f, "invalid BOUNDARY element: {msg}"),
            GdsError::BadPath(msg) => write!(f, "invalid PATH element: {msg}"),
            GdsError::UnknownStructure(name) => {
                write!(f, "reference to unknown structure `{name}`")
            }
            GdsError::RecursionLimit(name) => {
                write!(f, "structure nesting too deep (or cyclic) at `{name}`")
            }
            GdsError::UnsupportedTransform(msg) => {
                write!(f, "unsupported reference transform: {msg}")
            }
            GdsError::BadString => write!(f, "invalid string payload in GDSII record"),
            GdsError::Io(e) => write!(f, "gdsii i/o error: {e}"),
        }
    }
}

impl std::error::Error for GdsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GdsError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GdsError {
    fn from(e: std::io::Error) -> Self {
        GdsError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_roundtrip() {
        for rt in [
            RecordType::Header,
            RecordType::BgnLib,
            RecordType::LibName,
            RecordType::Units,
            RecordType::EndLib,
            RecordType::BgnStr,
            RecordType::StrName,
            RecordType::EndStr,
            RecordType::Boundary,
            RecordType::Layer,
            RecordType::DataType,
            RecordType::Xy,
            RecordType::EndEl,
        ] {
            assert_eq!(RecordType::from_code(rt.code()), Some(rt));
        }
    }

    #[test]
    fn unknown_code_is_none() {
        assert_eq!(RecordType::from_code(0xFFFF), None);
        assert_eq!(RecordType::from_code(0x0003), None);
    }

    #[test]
    fn error_display() {
        assert!(GdsError::UnexpectedEof { offset: 12 }
            .to_string()
            .contains("end of GDSII"));
        let unsupported = GdsError::UnsupportedRecord {
            code: 0x1234,
            offset: 40,
        };
        assert!(unsupported.to_string().contains("1234"));
        assert!(unsupported.to_string().contains("byte 40"));
        let unterminated = GdsError::Unterminated {
            context: "reading a BOUNDARY",
            offset: 8,
        };
        assert!(unterminated.to_string().contains("unterminated"));
    }

    #[test]
    fn offsets_are_carried_by_cursor_level_errors() {
        assert_eq!(GdsError::UnexpectedEof { offset: 3 }.offset(), Some(3));
        assert_eq!(
            GdsError::BadRecordLength {
                length: 5,
                offset: 16
            }
            .offset(),
            Some(16)
        );
        assert_eq!(
            GdsError::Unterminated {
                context: "x",
                offset: 9
            }
            .offset(),
            Some(9)
        );
        assert_eq!(GdsError::BadString.offset(), None);
        assert_eq!(GdsError::BadBoundary("x".into()).offset(), None);
    }
}
