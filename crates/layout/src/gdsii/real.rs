//! The GDSII 8-byte excess-64 floating-point format.
//!
//! GDSII predates IEEE 754: a real is stored as a sign bit, a 7-bit excess-64
//! base-16 exponent, and a 56-bit mantissa representing a fraction in
//! `[1/16, 1)`. Only the `UNITS` record uses reals, but the codec is exact
//! for the values we write and tested against the canonical encodings.

/// Encodes an `f64` into the GDSII 8-byte real format.
///
/// Values whose magnitude falls outside the representable range saturate to
/// zero or the maximum representable value.
///
/// ```
/// use hotspot_layout::gdsii::{decode_real8, encode_real8};
/// let bytes = encode_real8(1e-9);
/// let back = decode_real8(bytes);
/// assert!((back - 1e-9).abs() < 1e-24);
/// ```
pub fn encode_real8(value: f64) -> [u8; 8] {
    if value == 0.0 || !value.is_finite() {
        return [0; 8];
    }
    let sign = if value < 0.0 { 0x80u8 } else { 0 };
    let mut mag = value.abs();
    // Normalise: mag = fraction * 16^exp with fraction in [1/16, 1).
    let mut exp: i32 = 0;
    while mag >= 1.0 {
        mag /= 16.0;
        exp += 1;
    }
    while mag < 1.0 / 16.0 {
        mag *= 16.0;
        exp -= 1;
    }
    let biased = exp + 64;
    if biased <= 0 {
        return [0; 8]; // underflow
    }
    if biased > 127 {
        // Saturate to the largest representable magnitude.
        let mut out = [0xFFu8; 8];
        out[0] = sign | 0x7F;
        return out;
    }
    let mantissa = (mag * (1u64 << 56) as f64).round() as u64;
    // Rounding can push the mantissa to exactly 2^56; renormalise.
    let (mantissa, biased) = if mantissa >= 1u64 << 56 {
        (mantissa >> 4, biased + 1)
    } else {
        (mantissa, biased)
    };
    let mut out = [0u8; 8];
    out[0] = sign | (biased as u8 & 0x7F);
    for i in 0..7 {
        out[1 + i] = ((mantissa >> (8 * (6 - i))) & 0xFF) as u8;
    }
    out
}

/// Decodes a GDSII 8-byte real into an `f64`.
pub fn decode_real8(bytes: [u8; 8]) -> f64 {
    let sign = if bytes[0] & 0x80 != 0 { -1.0 } else { 1.0 };
    let exp = (bytes[0] & 0x7F) as i32 - 64;
    let mut mantissa: u64 = 0;
    for &b in &bytes[1..8] {
        mantissa = (mantissa << 8) | b as u64;
    }
    if mantissa == 0 {
        return 0.0;
    }
    sign * (mantissa as f64 / (1u64 << 56) as f64) * 16f64.powi(exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero() {
        assert_eq!(encode_real8(0.0), [0; 8]);
        assert_eq!(decode_real8([0; 8]), 0.0);
    }

    #[test]
    fn canonical_one() {
        // 1.0 = 0.0625 * 16^1 -> exponent 65, mantissa 0x10000000000000.
        let bytes = encode_real8(1.0);
        assert_eq!(bytes, [0x41, 0x10, 0, 0, 0, 0, 0, 0]);
        assert_eq!(decode_real8(bytes), 1.0);
    }

    #[test]
    fn canonical_units_values() {
        // The classic UNITS payload: 0.001 and 1e-9.
        let milli = encode_real8(0.001);
        assert!((decode_real8(milli) - 0.001).abs() < 1e-18);
        let nano = encode_real8(1e-9);
        assert!((decode_real8(nano) - 1e-9).abs() < 1e-24);
    }

    #[test]
    fn negative_values() {
        let b = encode_real8(-2.5);
        assert!(b[0] & 0x80 != 0);
        assert!((decode_real8(b) + 2.5).abs() < 1e-15);
    }

    #[test]
    fn roundtrip_assorted() {
        for &v in &[
            1.0, -1.0, 0.5, 2.0, 10.0, 1e-3, 1e-9, 123456.789, -0.000123, 16.0, 256.0,
        ] {
            let back = decode_real8(encode_real8(v));
            assert!(
                (back - v).abs() <= v.abs() * 1e-14,
                "{v} round-tripped to {back}"
            );
        }
    }

    #[test]
    fn non_finite_encodes_to_zero() {
        assert_eq!(encode_real8(f64::NAN), [0; 8]);
        assert_eq!(encode_real8(f64::INFINITY), [0; 8]);
    }

    #[test]
    fn huge_value_saturates() {
        let b = encode_real8(1e80);
        assert_eq!(b[0] & 0x7F, 0x7F);
        assert!(decode_real8(b).is_finite());
    }
}
