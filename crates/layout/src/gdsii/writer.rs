//! GDSII stream writer.

use super::real::encode_real8;
use super::records::{GdsError, RecordType};
use crate::{LayerId, Layout};
use bytes::{BufMut, BytesMut};
use std::io::Write;
use std::path::Path;

/// Serialises a layout into a GDSII byte stream.
///
/// The layout becomes one library containing one structure; each polygon is
/// written as a `BOUNDARY` with `DATATYPE` 0. Coordinates are database units
/// of 1 nm.
///
/// # Errors
///
/// Returns [`GdsError::BadBoundary`] if a polygon coordinate does not fit in
/// the 32-bit signed range GDSII mandates.
pub fn write_bytes(layout: &Layout) -> Result<Vec<u8>, GdsError> {
    let mut buf = BytesMut::with_capacity(4096);

    put_record(&mut buf, RecordType::Header, |b| b.put_i16(600)); // release 6
    put_record(&mut buf, RecordType::BgnLib, |b| {
        // Twelve i16 timestamp fields (modification + access); fixed epoch
        // values keep output deterministic.
        for _ in 0..12 {
            b.put_i16(0);
        }
    });
    put_string(&mut buf, RecordType::LibName, layout.name());
    put_record(&mut buf, RecordType::Units, |b| {
        b.put_slice(&encode_real8(0.001)); // user units per db unit
        b.put_slice(&encode_real8(1e-9)); // metres per db unit
    });

    put_record(&mut buf, RecordType::BgnStr, |b| {
        for _ in 0..12 {
            b.put_i16(0);
        }
    });
    put_string(&mut buf, RecordType::StrName, layout.name());

    for layer in layout.layers() {
        for polygon in layout.polygons(layer) {
            write_boundary(&mut buf, layer, polygon.vertices())?;
        }
    }

    put_record(&mut buf, RecordType::EndStr, |_| {});
    put_record(&mut buf, RecordType::EndLib, |_| {});
    Ok(buf.to_vec())
}

/// Writes the layout to a `.gds` file.
///
/// # Errors
///
/// Propagates serialisation errors and I/O failures.
pub fn write_file(layout: &Layout, path: impl AsRef<Path>) -> Result<(), GdsError> {
    let bytes = write_bytes(layout)?;
    let mut f = std::fs::File::create(path)?;
    f.write_all(&bytes)?;
    Ok(())
}

fn write_boundary(
    buf: &mut BytesMut,
    layer: LayerId,
    vertices: &[hotspot_geom::Point],
) -> Result<(), GdsError> {
    put_record(buf, RecordType::Boundary, |_| {});
    put_record(buf, RecordType::Layer, |b| b.put_i16(layer.number() as i16));
    put_record(buf, RecordType::DataType, |b| b.put_i16(0));
    // XY: each vertex as two i32s, with the first vertex repeated at the end
    // to close the loop (GDSII convention).
    let mut coords: Vec<i32> = Vec::with_capacity((vertices.len() + 1) * 2);
    for v in vertices.iter().chain(std::iter::once(&vertices[0])) {
        coords.push(to_i32(v.x)?);
        coords.push(to_i32(v.y)?);
    }
    // GDSII records carry a u16 byte length including the 4-byte header, so
    // an XY record holds at most (65534 - 4) / 8 = 8191 vertices — far above
    // any rectilinear clip polygon we produce.
    if coords.len() * 4 + 4 > u16::MAX as usize {
        return Err(GdsError::BadBoundary(format!(
            "polygon with {} vertices exceeds the XY record size limit",
            vertices.len()
        )));
    }
    put_record(buf, RecordType::Xy, |b| {
        for c in &coords {
            b.put_i32(*c);
        }
    });
    put_record(buf, RecordType::EndEl, |_| {});
    Ok(())
}

fn to_i32(v: i64) -> Result<i32, GdsError> {
    i32::try_from(v).map_err(|_| {
        GdsError::BadBoundary(format!("coordinate {v} outside the 32-bit GDSII range"))
    })
}

/// Appends one record: u16 total length, u16 type code, payload.
fn put_record(buf: &mut BytesMut, rt: RecordType, fill: impl FnOnce(&mut BytesMut)) {
    let mut payload = BytesMut::new();
    fill(&mut payload);
    debug_assert!(payload.len() + 4 <= u16::MAX as usize);
    buf.put_u16((payload.len() + 4) as u16);
    buf.put_u16(rt.code());
    buf.put_slice(&payload);
}

/// Appends an ASCII string record, padded to even length per the spec.
fn put_string(buf: &mut BytesMut, rt: RecordType, s: &str) {
    let mut bytes = s.as_bytes().to_vec();
    if !bytes.len().is_multiple_of(2) {
        bytes.push(0);
    }
    put_record(buf, rt, |b| b.put_slice(&bytes));
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_geom::Rect;

    #[test]
    fn stream_starts_with_header_record() {
        let layout = Layout::new("t");
        let bytes = write_bytes(&layout).unwrap();
        assert_eq!(&bytes[0..4], &[0x00, 0x06, 0x00, 0x02]);
    }

    #[test]
    fn stream_ends_with_endlib() {
        let layout = Layout::new("t");
        let bytes = write_bytes(&layout).unwrap();
        let n = bytes.len();
        assert_eq!(&bytes[n - 4..], &[0x00, 0x04, 0x04, 0x00]);
    }

    #[test]
    fn coordinates_out_of_i32_range_error() {
        let mut layout = Layout::new("t");
        layout.add_rect(
            LayerId::new(1),
            Rect::from_extents(0, 0, i64::from(i32::MAX) + 10, 10),
        );
        assert!(matches!(
            write_bytes(&layout),
            Err(GdsError::BadBoundary(_))
        ));
    }

    #[test]
    fn odd_length_names_are_padded() {
        let layout = Layout::new("abc"); // 3 bytes -> padded to 4
        let bytes = write_bytes(&layout).unwrap();
        // LIBNAME record: length 8 (4 header + 4 padded payload).
        let pos = bytes
            .windows(2)
            .position(|w| w == [0x02, 0x06])
            .expect("libname record present");
        let len = u16::from_be_bytes([bytes[pos - 2], bytes[pos - 1]]);
        assert_eq!(len, 8);
    }

    #[test]
    fn deterministic_output() {
        let mut layout = Layout::new("t");
        layout.add_rect(LayerId::new(1), Rect::from_extents(0, 0, 10, 10));
        assert_eq!(write_bytes(&layout).unwrap(), write_bytes(&layout).unwrap());
    }
}
