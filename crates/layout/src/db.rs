//! The flat layout database.

use hotspot_geom::{Polygon, Rect};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A GDSII layer number.
///
/// ```
/// use hotspot_layout::LayerId;
/// assert_eq!(LayerId::new(7).number(), 7);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LayerId(u16);

impl LayerId {
    /// The metal-1-style default layer used throughout the benchmarks.
    pub const METAL1: LayerId = LayerId(1);

    /// Creates a layer id from a GDSII layer number.
    pub const fn new(number: u16) -> Self {
        LayerId(number)
    }

    /// The GDSII layer number.
    pub const fn number(self) -> u16 {
        self.0
    }
}

impl fmt::Display for LayerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A flat layout: named top cell plus per-layer rectilinear polygons.
///
/// The hotspot benchmarks are flat (no hierarchy), so the database stores
/// polygons directly per layer. Polygons are kept in insertion order within
/// a layer.
///
/// ```
/// use hotspot_layout::{Layout, LayerId};
/// use hotspot_geom::Rect;
///
/// let mut l = Layout::new("chip");
/// l.add_rect(LayerId::new(1), Rect::from_extents(0, 0, 50, 20));
/// l.add_rect(LayerId::new(2), Rect::from_extents(0, 0, 20, 50));
/// assert_eq!(l.polygon_count(), 2);
/// assert_eq!(l.layers().count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layout {
    name: String,
    layers: BTreeMap<LayerId, Vec<Polygon>>,
}

impl Layout {
    /// Creates an empty layout with the given top-cell name.
    pub fn new(name: impl Into<String>) -> Self {
        Layout {
            name: name.into(),
            layers: BTreeMap::new(),
        }
    }

    /// Top-cell name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a polygon to a layer.
    pub fn add_polygon(&mut self, layer: LayerId, polygon: Polygon) {
        self.layers.entry(layer).or_default().push(polygon);
    }

    /// Adds a rectangle to a layer (stored as a 4-vertex polygon).
    pub fn add_rect(&mut self, layer: LayerId, rect: Rect) {
        self.add_polygon(layer, Polygon::from(rect));
    }

    /// The polygons on `layer` (empty slice if the layer is absent).
    pub fn polygons(&self, layer: LayerId) -> &[Polygon] {
        self.layers.get(&layer).map_or(&[], Vec::as_slice)
    }

    /// Iterator over the populated layers in ascending order.
    pub fn layers(&self) -> impl Iterator<Item = LayerId> + '_ {
        self.layers.keys().copied()
    }

    /// Total polygon count over all layers.
    pub fn polygon_count(&self) -> usize {
        self.layers.values().map(Vec::len).sum()
    }

    /// Bounding box over all layers, `None` for an empty layout.
    pub fn bbox(&self) -> Option<Rect> {
        let mut acc: Option<Rect> = None;
        for polys in self.layers.values() {
            for p in polys {
                let b = p.bbox();
                acc = Some(match acc {
                    Some(a) => a.union_bbox(&b),
                    None => b,
                });
            }
        }
        acc
    }

    /// Total polygon area on `layer`, in nm².
    pub fn layer_area(&self, layer: LayerId) -> i64 {
        self.polygons(layer).iter().map(Polygon::area).sum()
    }

    /// Dissects every polygon on `layer` into rectangles
    /// (see [`Polygon::dissect_horizontal`]).
    pub fn dissected_rects(&self, layer: LayerId) -> Vec<Rect> {
        hotspot_geom::dissect_rects(self.polygons(layer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_geom::Point;

    #[test]
    fn empty_layout() {
        let l = Layout::new("top");
        assert_eq!(l.name(), "top");
        assert_eq!(l.polygon_count(), 0);
        assert_eq!(l.bbox(), None);
        assert!(l.polygons(LayerId::new(1)).is_empty());
    }

    #[test]
    fn add_and_query() {
        let mut l = Layout::new("top");
        l.add_rect(LayerId::new(1), Rect::from_extents(0, 0, 10, 10));
        l.add_rect(LayerId::new(1), Rect::from_extents(20, 0, 30, 10));
        l.add_rect(LayerId::new(3), Rect::from_extents(0, 20, 10, 30));
        assert_eq!(l.polygon_count(), 3);
        assert_eq!(l.polygons(LayerId::new(1)).len(), 2);
        assert_eq!(
            l.layers().collect::<Vec<_>>(),
            vec![LayerId::new(1), LayerId::new(3)]
        );
        assert_eq!(l.bbox(), Some(Rect::from_extents(0, 0, 30, 30)));
        assert_eq!(l.layer_area(LayerId::new(1)), 200);
    }

    #[test]
    fn dissected_rects_flattens_layer() {
        let mut l = Layout::new("top");
        let poly = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(30, 0),
            Point::new(30, 10),
            Point::new(10, 10),
            Point::new(10, 30),
            Point::new(0, 30),
        ])
        .unwrap();
        l.add_polygon(LayerId::METAL1, poly);
        let rects = l.dissected_rects(LayerId::METAL1);
        assert_eq!(rects.len(), 2);
        assert_eq!(rects.iter().map(|r| r.area()).sum::<i64>(), 500);
    }

    #[test]
    fn layer_display() {
        assert_eq!(LayerId::new(12).to_string(), "L12");
    }
}
