//! A line-oriented text format for layouts.
//!
//! Used for human-readable fixtures and debugging dumps; GDSII
//! ([`crate::gdsii`]) is the interchange format. Grammar (one directive per
//! line, `#` starts a comment):
//!
//! ```text
//! layout <name>
//! layer <number>
//! rect <x0> <y0> <x1> <y1>
//! poly <x0> <y0> <x1> <y1> ... (even count, ≥ 8 numbers)
//! ```

use crate::{LayerId, Layout};
use hotspot_geom::{Point, Polygon, Rect};
use std::fmt;

/// Error parsing the text layout format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLayoutError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Explanation of the failure.
    pub message: String,
}

impl fmt::Display for ParseLayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseLayoutError {}

/// Serialises a layout to the text format.
pub fn to_string(layout: &Layout) -> String {
    let mut out = String::new();
    out.push_str(&format!("layout {}\n", layout.name()));
    for layer in layout.layers() {
        out.push_str(&format!("layer {}\n", layer.number()));
        for poly in layout.polygons(layer) {
            let vs = poly.vertices();
            if vs.len() == 4 {
                let b = poly.bbox();
                if poly.area() == b.area() {
                    out.push_str(&format!(
                        "rect {} {} {} {}\n",
                        b.min().x,
                        b.min().y,
                        b.max().x,
                        b.max().y
                    ));
                    continue;
                }
            }
            out.push_str("poly");
            for v in vs {
                out.push_str(&format!(" {} {}", v.x, v.y));
            }
            out.push('\n');
        }
    }
    out
}

/// Parses the text format into a layout.
///
/// # Errors
///
/// Returns [`ParseLayoutError`] with the offending line number for any
/// malformed directive.
pub fn from_str(input: &str) -> Result<Layout, ParseLayoutError> {
    let mut layout = Layout::new("layout");
    let mut current_layer = LayerId::METAL1;
    for (idx, raw) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let directive = tokens.next().expect("non-empty line has a token");
        let err = |message: String| ParseLayoutError {
            line: lineno,
            message,
        };
        match directive {
            "layout" => {
                let name = tokens
                    .next()
                    .ok_or_else(|| err("missing layout name".into()))?;
                layout = Layout::new(name);
            }
            "layer" => {
                let n: u16 = tokens
                    .next()
                    .ok_or_else(|| err("missing layer number".into()))?
                    .parse()
                    .map_err(|e| err(format!("bad layer number: {e}")))?;
                current_layer = LayerId::new(n);
            }
            "rect" => {
                let nums = parse_numbers(&mut tokens).map_err(&err)?;
                if nums.len() != 4 {
                    return Err(err(format!("rect needs 4 numbers, got {}", nums.len())));
                }
                layout.add_rect(
                    current_layer,
                    Rect::from_extents(nums[0], nums[1], nums[2], nums[3]),
                );
            }
            "poly" => {
                let nums = parse_numbers(&mut tokens).map_err(&err)?;
                if nums.len() < 8 || nums.len() % 2 != 0 {
                    return Err(err(format!(
                        "poly needs an even count of ≥ 8 numbers, got {}",
                        nums.len()
                    )));
                }
                let pts: Vec<Point> = nums
                    .chunks_exact(2)
                    .map(|c| Point::new(c[0], c[1]))
                    .collect();
                let poly = Polygon::new(pts).map_err(|e| err(e.to_string()))?;
                layout.add_polygon(current_layer, poly);
            }
            other => return Err(err(format!("unknown directive `{other}`"))),
        }
    }
    Ok(layout)
}

fn parse_numbers<'a, I: Iterator<Item = &'a str>>(tokens: &mut I) -> Result<Vec<i64>, String> {
    tokens
        .map(|t| {
            t.parse::<i64>()
                .map_err(|e| format!("bad number `{t}`: {e}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut l = Layout::new("chip");
        l.add_rect(LayerId::new(1), Rect::from_extents(0, 0, 10, 10));
        l.add_polygon(
            LayerId::new(2),
            Polygon::new(vec![
                Point::new(0, 0),
                Point::new(30, 0),
                Point::new(30, 10),
                Point::new(10, 10),
                Point::new(10, 30),
                Point::new(0, 30),
            ])
            .unwrap(),
        );
        let s = to_string(&l);
        let back = from_str(&s).unwrap();
        assert_eq!(back, l);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let l = from_str("# header\n\nlayout t\nlayer 1\nrect 0 0 5 5 # inline\n").unwrap();
        assert_eq!(l.polygon_count(), 1);
    }

    #[test]
    fn default_layer_is_metal1() {
        let l = from_str("rect 0 0 5 5\n").unwrap();
        assert_eq!(l.polygons(LayerId::METAL1).len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = from_str("layout t\nrect 0 0 5\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("4 numbers"));

        let e = from_str("bogus 1 2\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("bogus"));

        let e = from_str("rect a b c d\n").unwrap_err();
        assert!(e.message.contains("bad number"));
    }

    #[test]
    fn poly_validation() {
        // Odd coordinate count.
        assert!(from_str("poly 0 0 1 0 1 1 0\n").is_err());
        // Non-rectilinear polygon rejected through DissectError.
        let e = from_str("poly 0 0 5 5 5 0 0 5\n").unwrap_err();
        assert!(e.message.contains("not axis-parallel"));
    }
}
