//! Streaming tiled layout traversal for full-layout hotspot scans.
//!
//! The paper evaluates density-filtered clips over the *whole* testing
//! layout (§IV-E). Materializing every candidate clip up front is fine for
//! clip-sized benchmarks but not for production-scale layouts, so this
//! module walks a layout in bounded-size **tiles**: square regions of a
//! configurable stride, each yielded together with a surrounding *halo* so
//! that any clip whose core anchor falls inside the tile's region can be
//! evaluated from the tile alone.
//!
//! - [`TileSpec`] fixes the tile stride and halo width,
//! - [`TileGrid`] maps the layout bounding box onto a row-major tile grid,
//! - [`TileScanner`] iterates the non-empty tiles, querying a
//!   [`GridIndex`] per tile so each step is
//!   sublinear in the layout size.
//!
//! Tile *regions* partition the plane, so every geometry-derived anchor
//! point belongs to exactly one tile — the ownership rule that lets a tiled
//! scan reproduce a whole-layout scan exactly.
//!
//! ```
//! use hotspot_layout::{scan::{TileScanner, TileSpec}, LayerId, Layout};
//! use hotspot_geom::Rect;
//!
//! let mut layout = Layout::new("chip");
//! layout.add_rect(LayerId::METAL1, Rect::from_extents(0, 0, 400, 200));
//! layout.add_rect(LayerId::METAL1, Rect::from_extents(20_000, 0, 20_400, 200));
//!
//! let spec = TileSpec::new(4800, 3000)?;
//! let tiles: Vec<_> = TileScanner::new(&layout, LayerId::METAL1, spec).collect();
//! // Only non-empty tiles are yielded, and each rect's bottom-left anchor
//! // is owned by exactly one tile (halo windows may see it from others).
//! assert!(tiles.iter().all(|t| !t.rects.is_empty()));
//! for r in [Rect::from_extents(0, 0, 400, 200), Rect::from_extents(20_000, 0, 20_400, 200)] {
//!     let owners = tiles.iter().filter(|t| t.region.contains_point(r.min())).count();
//!     assert_eq!(owners, 1);
//! }
//! # Ok::<(), hotspot_layout::scan::TileSpecError>(())
//! ```

use crate::{LayerId, Layout};
use hotspot_geom::{Coord, GridIndex, Point, Rect};
use std::fmt;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a 64 over a byte slice — the same hash the scan journal frames
/// records with, reimplemented here so the layout crate stays standalone.
fn fnv1a64(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Error constructing a [`TileSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileSpecError {
    /// The tile stride was not positive.
    NonPositiveStride,
    /// The halo width was negative.
    NegativeHalo,
}

impl fmt::Display for TileSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TileSpecError::NonPositiveStride => write!(f, "tile stride must be positive"),
            TileSpecError::NegativeHalo => write!(f, "tile halo cannot be negative"),
        }
    }
}

impl std::error::Error for TileSpecError {}

/// Shape of every tile in a scan: the stride of the owned region and the
/// halo added on each side to form the tile window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileSpec {
    stride: Coord,
    halo: Coord,
}

impl TileSpec {
    /// Creates a tile spec.
    ///
    /// For clip-based detection the halo must be at least
    /// `ambit + core_side` so every clip window anchored inside the region
    /// lies fully inside the tile window.
    ///
    /// # Errors
    ///
    /// Returns [`TileSpecError`] unless `stride > 0` and `halo >= 0`.
    pub fn new(stride: Coord, halo: Coord) -> Result<Self, TileSpecError> {
        if stride <= 0 {
            return Err(TileSpecError::NonPositiveStride);
        }
        if halo < 0 {
            return Err(TileSpecError::NegativeHalo);
        }
        Ok(TileSpec { stride, halo })
    }

    /// The owned-region side length.
    pub fn stride(self) -> Coord {
        self.stride
    }

    /// The halo width on each side of the region.
    pub fn halo(self) -> Coord {
        self.halo
    }
}

/// The row-major tile grid a scan walks: the layout bounding box divided
/// into `cols × rows` regions of [`TileSpec::stride`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileGrid {
    origin: Point,
    spec: TileSpec,
    cols: Coord,
    rows: Coord,
}

impl TileGrid {
    /// Lays a grid over `bbox` (pass the layout/layer bounding box);
    /// `None` yields an empty grid.
    pub fn cover(bbox: Option<Rect>, spec: TileSpec) -> TileGrid {
        match bbox {
            Some(b) if !b.is_empty() => {
                let s = spec.stride;
                TileGrid {
                    origin: b.min(),
                    spec,
                    cols: (b.width() + s - 1) / s,
                    rows: (b.height() + s - 1) / s,
                }
            }
            _ => TileGrid {
                origin: Point::new(0, 0),
                spec,
                cols: 0,
                rows: 0,
            },
        }
    }

    /// Grid columns.
    pub fn cols(&self) -> Coord {
        self.cols
    }

    /// Grid rows.
    pub fn rows(&self) -> Coord {
        self.rows
    }

    /// Total tile count (including tiles that turn out to be empty).
    pub fn tile_count(&self) -> usize {
        (self.cols * self.rows) as usize
    }

    /// The owned region of tile `(ix, iy)`: a half-open stride × stride
    /// square. Regions partition the covered plane.
    pub fn region(&self, ix: Coord, iy: Coord) -> Rect {
        let s = self.spec.stride;
        Rect::from_origin_size(
            Point::new(self.origin.x + ix * s, self.origin.y + iy * s),
            s,
            s,
        )
    }

    /// The query window of tile `(ix, iy)`: its region inflated by the halo.
    pub fn window(&self, ix: Coord, iy: Coord) -> Rect {
        self.region(ix, iy).inflate(self.spec.halo)
    }
}

/// One yielded tile: its grid coordinates, owned region, halo window, and
/// the (unclipped) layout rectangles overlapping the window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tile {
    /// Column index in the tile grid.
    pub ix: Coord,
    /// Row index in the tile grid.
    pub iy: Coord,
    /// The owned region; anchor points inside it belong to this tile only.
    pub region: Rect,
    /// The region inflated by the halo; content queries use this window.
    pub window: Rect,
    /// Layout rectangles overlapping the window, in deterministic index
    /// order (full rectangles, not clipped to the window).
    pub rects: Vec<Rect>,
}

impl Tile {
    /// A stable content fingerprint of the geometry visible to this tile:
    /// FNV-1a 64 over the canonicalised (sorted, tile-local) extents of
    /// every rectangle overlapping the window.
    ///
    /// Coordinates are taken relative to the window's bottom-left corner,
    /// so the fingerprint is invariant under translation of the whole
    /// layout (the grid origin is the layout bounding-box corner, which
    /// translates with the content) and under the insertion order of the
    /// rectangles. Any change to the extents or membership of a rect
    /// overlapping the window changes the fingerprint; rects are hashed
    /// unclipped, so edits to a rect's far end outside the window
    /// conservatively invalidate the tile too.
    pub fn content_fingerprint(&self) -> u64 {
        let base = self.window.min();
        let mut locals: Vec<[Coord; 4]> = self
            .rects
            .iter()
            .map(|r| {
                let lo = r.min();
                let hi = r.max();
                [lo.x - base.x, lo.y - base.y, hi.x - base.x, hi.y - base.y]
            })
            .collect();
        locals.sort_unstable();
        let mut h = fnv1a64(FNV_OFFSET, &(locals.len() as u64).to_le_bytes());
        for l in &locals {
            for c in l {
                h = fnv1a64(h, &c.to_le_bytes());
            }
        }
        h
    }
}

/// A streaming iterator over the non-empty tiles of a layout layer.
///
/// Construction dissects the layer once into rectangles and builds a
/// [`GridIndex`]; iteration then yields tiles row-major (bottom-left to
/// top-right), skipping tiles whose window contains no geometry. Memory per
/// step is bounded by one tile's rectangle list — candidate clips are never
/// materialized here.
#[derive(Debug)]
pub struct TileScanner {
    index: GridIndex,
    grid: TileGrid,
    next: Coord,
    emitted: usize,
}

impl TileScanner {
    /// Scans the dissected rectangles of `layer` in `layout`.
    pub fn new(layout: &Layout, layer: LayerId, spec: TileSpec) -> TileScanner {
        TileScanner::from_rects(layout.dissected_rects(layer), spec)
    }

    /// Scans an explicit rectangle soup — the hook for feeding rectangles
    /// from an incremental GDSII reader without building a [`Layout`].
    pub fn from_rects(rects: Vec<Rect>, spec: TileSpec) -> TileScanner {
        // The index cell matches the tile stride so a tile window query
        // touches a constant number of cells.
        let index = GridIndex::build(rects, spec.stride + 2 * spec.halo.max(0));
        let grid = TileGrid::cover(index.bbox(), spec);
        TileScanner {
            index,
            grid,
            next: 0,
            emitted: 0,
        }
    }

    /// The tile grid being walked.
    pub fn grid(&self) -> &TileGrid {
        &self.grid
    }

    /// The spatial index backing tile queries.
    pub fn index(&self) -> &GridIndex {
        &self.index
    }

    /// Non-empty tiles yielded so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }
}

impl Iterator for TileScanner {
    type Item = Tile;

    fn next(&mut self) -> Option<Tile> {
        let total = self.grid.cols * self.grid.rows;
        while self.next < total {
            let ix = self.next % self.grid.cols.max(1);
            let iy = self.next / self.grid.cols.max(1);
            self.next += 1;
            let window = self.grid.window(ix, iy);
            let rects = self.index.query(&window);
            if rects.is_empty() {
                continue;
            }
            self.emitted += 1;
            return Some(Tile {
                ix,
                iy,
                region: self.grid.region(ix, iy),
                window,
                rects,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TileSpec {
        TileSpec::new(4800, 3000).unwrap()
    }

    #[test]
    fn spec_validation() {
        assert_eq!(TileSpec::new(0, 10), Err(TileSpecError::NonPositiveStride));
        assert_eq!(TileSpec::new(10, -1), Err(TileSpecError::NegativeHalo));
        let s = TileSpec::new(10, 0).unwrap();
        assert_eq!(s.stride(), 10);
        assert_eq!(s.halo(), 0);
    }

    #[test]
    fn empty_layout_yields_no_tiles() {
        let layout = Layout::new("t");
        let mut scanner = TileScanner::new(&layout, LayerId::METAL1, spec());
        assert_eq!(scanner.grid().tile_count(), 0);
        assert_eq!(scanner.next(), None);
    }

    #[test]
    fn regions_partition_the_bbox() {
        let mut layout = Layout::new("t");
        layout.add_rect(LayerId::METAL1, Rect::from_extents(0, 0, 12_000, 7_000));
        let scanner = TileScanner::new(&layout, LayerId::METAL1, spec());
        let grid = *scanner.grid();
        assert_eq!(grid.cols(), 3);
        assert_eq!(grid.rows(), 2);
        // Adjacent regions touch but do not overlap.
        let a = grid.region(0, 0);
        let b = grid.region(1, 0);
        assert!(!a.overlaps(&b));
        assert_eq!(a.max().x, b.min().x);
        // Windows carry the halo.
        assert_eq!(grid.window(0, 0), a.inflate(3000));
    }

    #[test]
    fn skips_empty_tiles_and_counts() {
        let mut layout = Layout::new("t");
        // Two rects ~5 strides apart: the tiles between them are empty.
        layout.add_rect(LayerId::METAL1, Rect::from_extents(0, 0, 400, 200));
        layout.add_rect(LayerId::METAL1, Rect::from_extents(30_000, 0, 30_400, 200));
        let mut scanner = TileScanner::new(&layout, LayerId::METAL1, spec());
        let tiles: Vec<Tile> = scanner.by_ref().collect();
        assert!(tiles.len() < scanner.grid().tile_count());
        assert_eq!(scanner.emitted(), tiles.len());
        for t in &tiles {
            assert!(!t.rects.is_empty());
            assert_eq!(t.window, t.region.inflate(3000));
        }
    }

    #[test]
    fn every_rect_appears_in_the_tile_owning_its_anchor() {
        let mut layout = Layout::new("t");
        let rects = [
            Rect::from_extents(100, 100, 500, 300),
            Rect::from_extents(5_000, 2_000, 5_400, 2_300),
            Rect::from_extents(9_999, 9_999, 10_200, 10_100),
        ];
        for r in rects {
            layout.add_rect(LayerId::METAL1, r);
        }
        let tiles: Vec<Tile> = TileScanner::new(&layout, LayerId::METAL1, spec()).collect();
        for r in rects {
            let owners: Vec<&Tile> = tiles
                .iter()
                .filter(|t| t.region.contains_point(r.min()))
                .collect();
            assert_eq!(owners.len(), 1, "anchor {:?} owned by one tile", r.min());
            assert!(owners[0].rects.contains(&r));
        }
    }

    #[test]
    fn fingerprint_ignores_order_and_translation_but_not_content() {
        let rects = [
            Rect::from_extents(100, 100, 500, 300),
            Rect::from_extents(700, 100, 900, 400),
            Rect::from_extents(1_500, 900, 1_900, 1_200),
        ];
        let tiles = |rs: &[Rect]| -> Vec<Tile> {
            let mut layout = Layout::new("t");
            for r in rs {
                layout.add_rect(LayerId::METAL1, *r);
            }
            TileScanner::new(&layout, LayerId::METAL1, spec()).collect()
        };
        let base = tiles(&rects);
        assert_eq!(base.len(), 1);
        let fp = base[0].content_fingerprint();

        // Insertion order is canonicalised away.
        let reordered = tiles(&[rects[2], rects[0], rects[1]]);
        assert_eq!(reordered[0].content_fingerprint(), fp);

        // A global translation moves the grid origin with the content.
        let shifted: Vec<Rect> = rects
            .iter()
            .map(|r| r.translate(Point::new(13_337, -4_200)))
            .collect();
        assert_eq!(tiles(&shifted)[0].content_fingerprint(), fp);

        // Perturbing one rect inside the window changes the fingerprint.
        let mut edited = rects;
        edited[1] = Rect::from_extents(700, 100, 901, 400);
        assert_ne!(tiles(&edited)[0].content_fingerprint(), fp);
    }

    #[test]
    fn halo_pulls_in_neighbouring_content() {
        let mut layout = Layout::new("t");
        // Content just across a region border: visible through the halo.
        layout.add_rect(LayerId::METAL1, Rect::from_extents(0, 0, 100, 100));
        layout.add_rect(LayerId::METAL1, Rect::from_extents(5_000, 0, 5_100, 100));
        let tiles: Vec<Tile> = TileScanner::new(&layout, LayerId::METAL1, spec()).collect();
        let first = tiles
            .iter()
            .find(|t| t.region.contains_point(Point::new(0, 0)))
            .unwrap();
        assert!(
            first
                .rects
                .contains(&Rect::from_extents(5_000, 0, 5_100, 100)),
            "halo window must see the neighbour rect"
        );
    }
}
