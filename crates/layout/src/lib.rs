//! Layout database and GDSII stream-format I/O.
//!
//! The paper reads the ICCAD-2012 benchmarks through the Anuvad GDSII
//! library; this crate is the from-scratch substitute. It provides:
//!
//! - [`Layout`]: a flat, layered layout database of rectilinear polygons,
//! - [`gdsii`]: a binary GDSII stream-format reader/writer (BOUNDARY subset),
//! - [`text`]: a line-oriented text format for fixtures and debugging,
//! - [`clip`]: the core/ambit clip-window geometry of Figs. 1–2, including
//!   the contest's hit rule,
//! - [`scan`]: a streaming tiled traversal of a layout layer for
//!   bounded-memory full-layout scans.
//!
//! # Examples
//!
//! ```
//! use hotspot_layout::{Layout, LayerId};
//! use hotspot_geom::Rect;
//!
//! let mut layout = Layout::new("top");
//! layout.add_rect(LayerId::new(1), Rect::from_extents(0, 0, 100, 40));
//! let bytes = hotspot_layout::gdsii::write_bytes(&layout)?;
//! let back = hotspot_layout::gdsii::read_bytes(&bytes)?;
//! assert_eq!(back.polygon_count(), 1);
//! # Ok::<(), hotspot_layout::gdsii::GdsError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod clip;
mod db;
pub mod gdsii;
pub mod scan;
pub mod svg;
pub mod text;

pub use clip::{ClipShape, ClipWindow};
pub use db::{LayerId, Layout};
