//! SVG rendering of layouts and detection results.
//!
//! Produces self-contained SVG for visual inspection: layer polygons,
//! ground-truth hotspot windows, and reported clips. Coordinates are
//! flipped so layout +y points up, matching EDA viewers.
//!
//! ```
//! use hotspot_layout::{svg, LayerId, Layout};
//! use hotspot_geom::Rect;
//!
//! let mut layout = Layout::new("t");
//! layout.add_rect(LayerId::new(1), Rect::from_extents(0, 0, 100, 40));
//! let doc = svg::render(&layout, &svg::RenderOptions::default());
//! assert!(doc.starts_with("<svg"));
//! ```

use crate::{ClipWindow, Layout};
use hotspot_geom::Rect;
use std::fmt::Write as _;
use std::path::Path;

/// Visual options for [`render`].
#[derive(Debug, Clone)]
pub struct RenderOptions {
    /// Output width in pixels (height follows the aspect ratio).
    pub width_px: u32,
    /// Ground-truth hotspot windows, drawn as green outlines.
    pub actual: Vec<ClipWindow>,
    /// Reported hotspot windows, drawn as red outlines with hatched cores.
    pub reported: Vec<ClipWindow>,
    /// Layer fill colours, cycled by layer index.
    pub layer_palette: Vec<&'static str>,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            width_px: 1024,
            actual: Vec::new(),
            reported: Vec::new(),
            layer_palette: vec!["#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee"],
        }
    }
}

/// Renders a layout (and optional detection overlays) to an SVG document.
pub fn render(layout: &Layout, options: &RenderOptions) -> String {
    let bbox = content_bbox(layout, options).unwrap_or(Rect::from_extents(0, 0, 1, 1));
    let margin = (bbox.width().max(bbox.height()) / 50).max(1);
    let view = bbox.inflate(margin);
    let aspect = view.height() as f64 / view.width() as f64;
    let width_px = options.width_px.max(64);
    let height_px = ((width_px as f64) * aspect).ceil().max(64.0) as u32;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width_px}\" height=\"{height_px}\" \
         viewBox=\"{} {} {} {}\">",
        view.min().x,
        -view.max().y, // y-flip: SVG y grows downward
        view.width(),
        view.height()
    );
    let _ = writeln!(
        out,
        "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"#ffffff\"/>",
        view.min().x,
        -view.max().y,
        view.width(),
        view.height()
    );

    // Layer geometry.
    for (idx, layer) in layout.layers().enumerate() {
        let color = options.layer_palette[idx % options.layer_palette.len().max(1)];
        let _ = writeln!(
            out,
            "<g fill=\"{color}\" fill-opacity=\"0.8\" data-layer=\"{layer}\">"
        );
        for poly in layout.polygons(layer) {
            for r in poly.dissect_horizontal() {
                push_rect(&mut out, &r, None);
            }
        }
        let _ = writeln!(out, "</g>");
    }

    // Ground truth: green cores and clips.
    if !options.actual.is_empty() {
        let _ = writeln!(
            out,
            "<g fill=\"none\" stroke=\"#117733\" stroke-width=\"{}\" data-overlay=\"actual\">",
            stroke(&view)
        );
        for w in &options.actual {
            push_rect(&mut out, &w.core, Some("actual-core"));
            push_rect(&mut out, &w.clip, Some("actual-clip"));
        }
        let _ = writeln!(out, "</g>");
    }

    // Reports: red cores.
    if !options.reported.is_empty() {
        let _ = writeln!(
            out,
            "<g fill=\"#cc3311\" fill-opacity=\"0.15\" stroke=\"#cc3311\" stroke-width=\"{}\" \
             data-overlay=\"reported\">",
            stroke(&view)
        );
        for w in &options.reported {
            push_rect(&mut out, &w.core, Some("reported-core"));
        }
        let _ = writeln!(out, "</g>");
    }

    out.push_str("</svg>\n");
    out
}

/// Renders straight to a file.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn render_to_file(
    layout: &Layout,
    options: &RenderOptions,
    path: impl AsRef<Path>,
) -> std::io::Result<()> {
    std::fs::write(path, render(layout, options))
}

fn content_bbox(layout: &Layout, options: &RenderOptions) -> Option<Rect> {
    let mut acc = layout.bbox();
    for w in options.actual.iter().chain(&options.reported) {
        acc = Some(match acc {
            Some(a) => a.union_bbox(&w.clip),
            None => w.clip,
        });
    }
    acc
}

fn stroke(view: &Rect) -> i64 {
    (view.width().max(view.height()) / 400).max(1)
}

fn push_rect(out: &mut String, r: &Rect, class: Option<&str>) {
    let class_attr = class.map(|c| format!(" class=\"{c}\"")).unwrap_or_default();
    let _ = writeln!(
        out,
        "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\"{}/>",
        r.min().x,
        -r.max().y,
        r.width(),
        r.height(),
        class_attr
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClipShape, LayerId};
    use hotspot_geom::Point;

    fn sample() -> Layout {
        let mut l = Layout::new("svg");
        l.add_rect(LayerId::new(1), Rect::from_extents(0, 0, 400, 200));
        l.add_rect(LayerId::new(2), Rect::from_extents(100, 300, 300, 700));
        l
    }

    #[test]
    fn renders_valid_header_and_footer() {
        let doc = render(&sample(), &RenderOptions::default());
        assert!(doc.starts_with("<svg xmlns"));
        assert!(doc.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn renders_one_group_per_layer() {
        let doc = render(&sample(), &RenderOptions::default());
        assert_eq!(doc.matches("data-layer=").count(), 2);
        // Background + 2 geometry rects.
        assert_eq!(doc.matches("<rect").count(), 3);
    }

    #[test]
    fn overlays_appear_when_provided() {
        let shape = ClipShape::ICCAD2012;
        let options = RenderOptions {
            actual: vec![shape.window_centered(Point::new(0, 0))],
            reported: vec![shape.window_centered(Point::new(100, 0))],
            ..Default::default()
        };
        let doc = render(&sample(), &options);
        assert!(doc.contains("data-overlay=\"actual\""));
        assert!(doc.contains("data-overlay=\"reported\""));
        assert!(doc.contains("class=\"reported-core\""));
    }

    #[test]
    fn empty_layout_renders_without_panic() {
        let doc = render(&Layout::new("empty"), &RenderOptions::default());
        assert!(doc.starts_with("<svg"));
    }

    #[test]
    fn y_axis_is_flipped() {
        // A rect with max.y = 700 must be emitted at y = -700.
        let doc = render(&sample(), &RenderOptions::default());
        assert!(doc.contains("y=\"-700\""), "{doc}");
    }

    #[test]
    fn writes_to_file() {
        let path = std::env::temp_dir().join("hotspot_svg_test.svg");
        render_to_file(&sample(), &RenderOptions::default(), &path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("</svg>"));
        std::fs::remove_file(&path).ok();
    }
}
