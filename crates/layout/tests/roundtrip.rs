//! Property tests: GDSII and text round-trips over random layouts.

use hotspot_geom::{Point, Rect};
use hotspot_layout::{gdsii, text, LayerId, Layout};
use proptest::prelude::*;

fn arb_layout() -> impl Strategy<Value = Layout> {
    let rects = proptest::collection::vec(
        (
            0u16..4,              // layer
            -100_000i64..100_000, // x
            -100_000i64..100_000, // y
            1i64..5_000,          // w
            1i64..5_000,          // h
        ),
        0..20,
    );
    ("[a-zA-Z][a-zA-Z0-9_]{0,12}", rects).prop_map(|(name, rects)| {
        let mut l = Layout::new(name);
        for (layer, x, y, w, h) in rects {
            l.add_rect(
                LayerId::new(layer),
                Rect::from_origin_size(Point::new(x, y), w, h),
            );
        }
        l
    })
}

proptest! {
    #[test]
    fn gdsii_roundtrip(layout in arb_layout()) {
        let bytes = gdsii::write_bytes(&layout).expect("writable");
        let back = gdsii::read_bytes(&bytes).expect("readable");
        prop_assert_eq!(back, layout);
    }

    #[test]
    fn text_roundtrip(layout in arb_layout()) {
        let s = text::to_string(&layout);
        let back = text::from_str(&s).expect("parsable");
        prop_assert_eq!(back, layout);
    }

    #[test]
    fn gdsii_never_panics_on_truncation(layout in arb_layout(), frac in 0.0f64..1.0) {
        let bytes = gdsii::write_bytes(&layout).expect("writable");
        let cut = ((bytes.len() as f64) * frac) as usize;
        // Truncated streams must error or parse, never panic.
        let _ = gdsii::read_bytes(&bytes[..cut]);
    }

    #[test]
    fn gdsii_never_panics_on_bitflips(
        layout in arb_layout(),
        flips in proptest::collection::vec((0usize..10_000, 0u8..8), 1..5)
    ) {
        let mut bytes = gdsii::write_bytes(&layout).expect("writable");
        if bytes.is_empty() { return Ok(()); }
        for (pos, bit) in flips {
            let i = pos % bytes.len();
            bytes[i] ^= 1 << bit;
        }
        let _ = gdsii::read_bytes(&bytes);
    }
}
