#!/usr/bin/env python3
"""Regenerates the corrupt GDSII fixture corpus.

Each fixture is a deliberately malformed `.gds` stream that the reader must
reject with a typed `GdsError` (never a panic). `corrupt_corpus.rs` walks this
directory and asserts on the error shape for each file, so any new fixture
added here needs a matching expectation there.
"""

import struct
from pathlib import Path

HERE = Path(__file__).parent

HEADER = 0x0002
BGNLIB = 0x0102
LIBNAME = 0x0206
UNITS = 0x0305
ENDLIB = 0x0400
BGNSTR = 0x0502
STRNAME = 0x0606
ENDSTR = 0x0700
BOUNDARY = 0x0800
LAYER = 0x0D02
DATATYPE = 0x0E02
XY = 0x1003
ENDEL = 0x1100


def rec(code: int, payload: bytes = b"") -> bytes:
    return struct.pack(">HH", len(payload) + 4, code) + payload


def string(code: int, s: str) -> bytes:
    raw = s.encode("ascii")
    if len(raw) % 2:
        raw += b"\x00"
    return rec(code, raw)


def prelude() -> bytes:
    return (
        rec(HEADER, struct.pack(">h", 600))
        + rec(BGNLIB, b"\x00" * 24)
        + string(LIBNAME, "lib")
        + rec(UNITS, b"\x00" * 16)
    )


def xy(points) -> bytes:
    return rec(XY, b"".join(struct.pack(">ii", x, y) for x, y in points))


FIXTURES = {
    # Zero-length stream: EOF where the HEADER record should start.
    "empty.gds": b"",
    # Three bytes: not even one full record header.
    "truncated_header.gds": b"\x00\x06\x00",
    # HEADER record declaring an odd length (5).
    "bad_record_length_odd.gds": b"\x00\x05\x00\x02\x00",
    # Valid HEADER, then a BGNLIB declaring 32 bytes with only 4 present.
    "truncated_mid_record.gds": rec(HEADER, struct.pack(">h", 600))
    + b"\x00\x20\x01\x02"
    + b"\x00" * 4,
    # Library opens a structure that never reaches ENDSTR.
    "unterminated_structure.gds": prelude()
    + rec(BGNSTR, b"\x00" * 24)
    + string(STRNAME, "open"),
    # A BOUNDARY element that never reaches ENDEL.
    "unterminated_element.gds": prelude()
    + rec(BGNSTR, b"\x00" * 24)
    + string(STRNAME, "open")
    + rec(BOUNDARY)
    + rec(LAYER, struct.pack(">h", 1)),
    # A record code this subset does not define, in the library body.
    "unknown_record.gds": prelude() + rec(0x1234, b"\x00\x00") + rec(ENDLIB),
    # BOUNDARY whose XY ring is not closed (last point != first).
    "bad_boundary_xy.gds": prelude()
    + rec(BGNSTR, b"\x00" * 24)
    + string(STRNAME, "top")
    + rec(BOUNDARY)
    + rec(LAYER, struct.pack(">h", 1))
    + rec(DATATYPE, struct.pack(">h", 0))
    + xy([(0, 0), (10, 0), (10, 10)])
    + rec(ENDEL)
    + rec(ENDSTR)
    + rec(ENDLIB),
    # UNITS payload must be 16 bytes; this one carries 8.
    "bad_units_length.gds": rec(HEADER, struct.pack(">h", 600))
    + rec(BGNLIB, b"\x00" * 24)
    + string(LIBNAME, "lib")
    + rec(UNITS, b"\x00" * 8)
    + rec(ENDLIB),
    # ENDEL cannot appear directly in the library body.
    "misplaced_record.gds": prelude() + rec(ENDEL) + rec(ENDLIB),
    # Uniform garbage: 0xABAB parses as an odd record length.
    "garbage.gds": b"\xab" * 64,
}


def main() -> None:
    for name, data in FIXTURES.items():
        (HERE / name).write_bytes(data)
        print(f"wrote {name} ({len(data)} bytes)")


if __name__ == "__main__":
    main()
