//! Implementation of the `hotspot` command-line interface.
//!
//! Subcommands:
//!
//! - `generate` — build a synthetic benchmark and write its artifacts
//!   (`layout.gds`, `training.json`, `actual.json`, `spec.json`),
//! - `train` — train the framework on a training set and persist the model,
//! - `detect` — run a trained model on a GDSII layout and write the report,
//! - `scan` — stream a layout through the tiled, density-prefiltered scan,
//!   optionally with live observability (`--progress`, `--metrics-addr`,
//!   `--events`),
//! - `score` — score a report against ground truth,
//! - `info` — print layout statistics,
//! - `events` — validate and summarise an NDJSON observability event log.
//!
//! Every command is a pure function from arguments to an output string, so
//! the whole surface is unit-testable without spawning processes.

// `deny` rather than `forbid` so the `sigint` module alone can opt back
// in for the two-line `signal(2)` shim; everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod sigint;

use hotspot_benchgen::{iccad_suite, Benchmark, SuiteScale};
use hotspot_core::{
    CancelToken, DetectError, DetectorConfig, EvalMode, FailurePolicy, FaultPlan, HotspotDetector,
    MetricsServer, NdjsonSink, ObsEvent, ObsHub, ProgressSink, RasterMode, Sampler, ScanConfig,
    TrainingSet,
};
use hotspot_layout::{gdsii, ClipWindow, LayerId};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Error running a CLI command.
#[derive(Debug)]
pub enum CliError {
    /// Bad arguments; the message explains usage.
    Usage(String),
    /// Filesystem failure.
    Io(std::io::Error),
    /// JSON (de)serialisation failure.
    Json(serde_json::Error),
    /// GDSII parse/serialise failure.
    Gds(gdsii::GdsError),
    /// Detector pipeline failure (training or evaluation).
    Pipeline(DetectError),
}

impl CliError {
    /// Process exit code for this error: each variant maps to a distinct
    /// non-zero code so scripts can tell failure classes apart.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Io(_) => 3,
            CliError::Json(_) => 4,
            CliError::Gds(_) => 5,
            CliError::Pipeline(_) => 6,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Json(e) => write!(f, "json error: {e}"),
            CliError::Gds(e) => write!(f, "gdsii error: {e}"),
            CliError::Pipeline(e) => write!(f, "pipeline error: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}
impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        CliError::Json(e)
    }
}
impl From<gdsii::GdsError> for CliError {
    fn from(e: gdsii::GdsError) -> Self {
        CliError::Gds(e)
    }
}
impl From<DetectError> for CliError {
    fn from(e: DetectError) -> Self {
        CliError::Pipeline(e)
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
hotspot — machine-learning lithography hotspot detection

USAGE:
  hotspot generate --name <benchmark> [--scale tiny|small|paper|huge] --out <dir>
  hotspot train    --training <training.json> --out <model.json> [--threads N]
                   [--telemetry <telemetry.json>]
  hotspot detect   --model <model.json> --layout <layout.gds> --out <report.json>
                   [--layer N] [--threshold X] [--threads N] [--json]
                   [--eval-mode reference|compiled]
                   [--raster-mode reference|sat]
                   [--telemetry <telemetry.json>]
  hotspot scan     --model <model.json> --layout <layout.gds> --out <report.json>
                   [--layer N] [--threshold X] [--threads N] [--tile-cores N]
                   [--max-in-flight N] [--tile-density X] [--json]
                   [--eval-mode reference|compiled]
                   [--raster-mode reference|sat]
                   [--telemetry <telemetry.json>]
                   [--cache <cache.bin>] [--cache-verify]
                   [--journal <journal.log>] [--resume] [--max-failed-tiles N]
                   [--deadline DUR] [--tile-timeout DUR]
                   [--fault-seed N] [--fault-panic-per-mille N]
                   [--fault-transient-per-mille N]
                   [--fault-stall-tasks I,J,..] [--fault-stall-per-mille N]
                   [--fault-stall-ms N]
                   [--progress] [--metrics-addr <host:port>]
                   [--events <events.ndjson>] [--obs-interval-ms N]
                   [--metrics-linger-ms N]
  hotspot score    --report <report.json> --actual <actual.json> --area-um2 <X>
                   [--min-overlap X] [--json]
  hotspot info     --layout <layout.gds>
  hotspot events   --file <events.ndjson> [--json]
  hotspot render   --layout <layout.gds> --out <image.svg>
                   [--report <report.json>] [--actual <actual.json>]

Benchmarks: array_benchmark1..5, mx_blind_partial.
--threads 0 means one worker per core. `detect`/`scan` `--telemetry` merges
the model's training telemetry with the run into an eight-stage record.
--eval-mode selects the kernel-evaluation engine: `compiled` (default)
routes admission through the batched 8-orientation centroid router and
the flattened SVM engine; `reference` keeps the naive per-kernel search
as a cross-checking oracle. Both flag the identical hotspot set.
--raster-mode selects the density-grid rasteriser: `sat` (default) shares
one exact summed-area table per tile; `reference` sweeps every rect per
clip. Both are exact-integer paths and produce byte-identical reports.
`scan` streams the layout tile by tile: --max-in-flight bounds memory
(0 = 2x threads), --tile-cores sets the tile stride in core sides, and
--tile-density enables the aggressive mean-coverage prefilter.
--journal appends each finished tile to a checksummed journal; --resume
replays it and re-scans only the missing tiles (bit-identical results).
--cache keeps a content-addressed tile result cache across scans: a warm
re-scan replays unchanged tiles by content fingerprint and recomputes only
edited ones, with a report byte-identical to a cold scan. Retraining or
changing detector/scan config invalidates the whole cache; corrupt entries
are dropped individually. --cache-verify also recomputes every hit and
fails if any stored entry disagrees (debugging/CI).
--max-failed-tiles quarantines panicking tiles instead of aborting, up to
the given bound. The --fault-* flags drive the deterministic
fault-injection harness (testing only); the --fault-stall-* flags stall
chosen tiles so timeout handling can be rehearsed.
--deadline caps the whole scan's wall-clock budget and --tile-timeout
caps each tile's. Durations take a unit suffix (30s, 500ms, 2m); a bare
number means seconds. A scan that outlives its deadline — or is
interrupted with Ctrl-C — stops admitting tiles, drains its in-flight
window, syncs the journal, writes the partial report, and exits with
code 8; re-running with --journal <path> --resume finishes it with a
report identical to an uninterrupted run. A tile that outlives
--tile-timeout is quarantined like a panicking one (needs
--max-failed-tiles).
`scan` observability (pure observation — the report is bit-identical with
or without it): --progress renders a live tiles/clips/ETA line to stderr,
--metrics-addr serves Prometheus text format on http://<host:port>/metrics
for the duration of the scan (--metrics-linger-ms keeps it up that much
longer so scrapers can catch the final totals), and --events appends every
structured pipeline event to a schema-versioned NDJSON log.
--obs-interval-ms sets the counter sampling period (default 1000).
`events` validates such a log line by line and summarises it.

Exit codes: 0 ok, 2 usage, 3 i/o, 4 json, 5 gdsii, 6 pipeline,
7 completed with quarantined tiles, 8 aborted by deadline or Ctrl-C
(partial results journaled; resume with --journal <path> --resume).";

/// Exit code for a scan that completed but quarantined one or more tiles.
pub const EXIT_QUARANTINED: i32 = 7;

/// Exit code for a scan stopped early by its `--deadline` or by SIGINT:
/// the report written is partial but valid, the journal holds every
/// finished tile, and `--resume` completes the scan bit-identically.
/// Takes precedence over [`EXIT_QUARANTINED`] when both apply.
pub const EXIT_ABORTED: i32 = 8;

/// Runs a CLI invocation (without the program name) and returns its stdout.
///
/// Degraded-mode outcomes (a scan that completed with quarantined tiles)
/// are reported as success here; use [`run_with_status`] to observe the
/// non-zero advisory exit code.
///
/// # Errors
///
/// Returns [`CliError`] for bad arguments or failing I/O.
pub fn run(args: &[String]) -> Result<String, CliError> {
    run_with_status(args).map(|(out, _)| out)
}

/// Runs a CLI invocation and returns its stdout plus the process exit code.
///
/// The code is `0` for a clean run and [`EXIT_QUARANTINED`] when a scan
/// completed under `--max-failed-tiles` with at least one quarantined tile.
///
/// # Errors
///
/// Returns [`CliError`] for bad arguments or failing I/O.
pub fn run_with_status(args: &[String]) -> Result<(String, i32), CliError> {
    let Some((command, rest)) = args.split_first() else {
        return Err(CliError::Usage(USAGE.into()));
    };
    let opts = parse_flags(rest)?;
    match command.as_str() {
        "generate" => cmd_generate(&opts).map(clean),
        "train" => cmd_train(&opts).map(clean),
        "detect" => cmd_detect(&opts).map(clean),
        "scan" => cmd_scan(&opts),
        "score" => cmd_score(&opts).map(clean),
        "info" => cmd_info(&opts).map(clean),
        "events" => cmd_events(&opts).map(clean),
        "render" => cmd_render(&opts).map(clean),
        "help" | "--help" | "-h" => Ok(clean(USAGE.to_string())),
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`\n\n{USAGE}"
        ))),
    }
}

fn clean(out: String) -> (String, i32) {
    (out, 0)
}

/// Flag map: `--key value` pairs, plus valueless boolean switches.
struct Opts(Vec<(String, String)>);

/// Flags that take no value.
const BOOL_FLAGS: &[&str] = &["json", "resume", "progress", "cache-verify"];

impl Opts {
    fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, key: &str) -> bool {
        self.0.iter().any(|(k, _)| k == key)
    }

    fn require(&self, key: &str) -> Result<&str, CliError> {
        self.get(key)
            .ok_or_else(|| CliError::Usage(format!("missing required flag --{key}\n\n{USAGE}")))
    }

    fn parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("invalid value `{v}` for --{key}"))),
        }
    }
}

fn parse_flags(args: &[String]) -> Result<Opts, CliError> {
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(key) = flag.strip_prefix("--") else {
            return Err(CliError::Usage(format!("expected a --flag, got `{flag}`")));
        };
        if BOOL_FLAGS.contains(&key) {
            out.push((key.to_string(), String::new()));
            continue;
        }
        let Some(value) = it.next() else {
            return Err(CliError::Usage(format!("flag --{key} needs a value")));
        };
        out.push((key.to_string(), value.clone()));
    }
    Ok(Opts(out))
}

fn cmd_generate(opts: &Opts) -> Result<String, CliError> {
    let name = opts.require("name")?;
    let out_dir = PathBuf::from(opts.require("out")?);
    let scale = match opts.get("scale").unwrap_or("small") {
        "tiny" => SuiteScale::Tiny,
        "small" => SuiteScale::Small,
        "medium" => SuiteScale::Medium,
        "paper" => SuiteScale::Paper,
        "huge" => SuiteScale::Huge,
        other => {
            return Err(CliError::Usage(format!(
                "unknown scale `{other}` (tiny|small|medium|paper|huge)"
            )))
        }
    };
    let spec = iccad_suite(scale)
        .into_iter()
        .find(|s| s.name == name)
        .ok_or_else(|| CliError::Usage(format!("unknown benchmark `{name}`")))?;
    let benchmark = Benchmark::generate(spec);

    std::fs::create_dir_all(&out_dir)?;
    gdsii::write_file(&benchmark.layout, out_dir.join("layout.gds"))?;
    write_json(out_dir.join("training.json"), &benchmark.training)?;
    write_json(out_dir.join("actual.json"), &benchmark.actual)?;
    write_json(out_dir.join("spec.json"), &benchmark.spec)?;

    Ok(format!(
        "generated `{}` into {}\n  layout.gds    {} polygons, {:.0} um^2\n  training.json {} hotspots / {} nonhotspots\n  actual.json   {} ground-truth hotspots",
        benchmark.spec.name,
        out_dir.display(),
        benchmark.layout.polygon_count(),
        benchmark.area_um2(),
        benchmark.training.hotspots.len(),
        benchmark.training.nonhotspots.len(),
        benchmark.actual.len(),
    ))
}

fn cmd_train(opts: &Opts) -> Result<String, CliError> {
    let training: TrainingSet = read_json(opts.require("training")?)?;
    let out = PathBuf::from(opts.require("out")?);
    let config = DetectorConfig {
        threads: opts.parse("threads", 0usize)?,
        ..Default::default()
    };
    let detector = HotspotDetector::train(&training, config)?;
    write_json(&out, &detector)?;
    let s = detector.summary();
    if let Some(path) = opts.get("telemetry") {
        write_json(path, &s.telemetry)?;
    }
    Ok(format!(
        "trained {} kernels ({} hotspot clusters, {} nonhotspot medoids, feedback: {}) in {:.2?}\nmodel written to {}",
        detector.kernels().len(),
        s.hotspot_clusters,
        s.nonhotspot_medoids,
        s.feedback_trained,
        s.training_time,
        out.display(),
    ))
}

/// Parses an optional duration flag: `30s`, `500ms`, `2m`, or a bare
/// integer meaning seconds. Bad values are usage errors (exit code 2).
fn parse_opt_duration(opts: &Opts, key: &str) -> Result<Option<Duration>, CliError> {
    let Some(raw) = opts.get(key) else {
        return Ok(None);
    };
    let (digits, unit_ms) = if let Some(n) = raw.strip_suffix("ms") {
        (n, 1u64)
    } else if let Some(n) = raw.strip_suffix('s') {
        (n, 1_000)
    } else if let Some(n) = raw.strip_suffix('m') {
        (n, 60_000)
    } else {
        (raw, 1_000)
    };
    digits
        .parse::<u64>()
        .ok()
        .and_then(|n| n.checked_mul(unit_ms))
        .map(|ms| Some(Duration::from_millis(ms)))
        .ok_or_else(|| {
            CliError::Usage(format!(
                "invalid duration `{raw}` for --{key} (try 30s, 500ms, or 2m)"
            ))
        })
}

/// Parses an optional comma-separated list of task indices
/// (e.g. `--fault-stall-tasks 3,17`).
fn parse_opt_indices(opts: &Opts, key: &str) -> Result<Vec<usize>, CliError> {
    let Some(raw) = opts.get(key) else {
        return Ok(Vec::new());
    };
    raw.split(',')
        .map(|part| part.trim().parse::<usize>())
        .collect::<Result<Vec<_>, _>>()
        .map_err(|_| {
            CliError::Usage(format!(
                "invalid value `{raw}` for --{key} (expected comma-separated indices)"
            ))
        })
}

/// Parses the optional `--eval-mode` flag; absent means "keep the model's
/// persisted mode". Bad values are usage errors (exit code 2).
fn parse_eval_mode(opts: &Opts) -> Result<Option<EvalMode>, CliError> {
    opts.get("eval-mode")
        .map(|v| {
            v.parse().map_err(|_| {
                CliError::Usage(format!(
                    "invalid value `{v}` for --eval-mode (expected `reference` or `compiled`)"
                ))
            })
        })
        .transpose()
}

/// Parses the optional `--raster-mode` flag; absent means "keep the
/// model's persisted mode". Bad values are usage errors (exit code 2).
fn parse_raster_mode(opts: &Opts) -> Result<Option<RasterMode>, CliError> {
    opts.get("raster-mode")
        .map(|v| {
            v.parse().map_err(|_| {
                CliError::Usage(format!(
                    "invalid value `{v}` for --raster-mode (expected `reference` or `sat`)"
                ))
            })
        })
        .transpose()
}

fn cmd_detect(opts: &Opts) -> Result<String, CliError> {
    let mut detector: HotspotDetector = read_json(opts.require("model")?)?;
    let layout = gdsii::read_file(opts.require("layout")?)?;
    let out = PathBuf::from(opts.require("out")?);
    let layer = LayerId::new(opts.parse("layer", 1u16)?);
    let threshold = opts.parse("threshold", detector.config().decision_threshold)?;
    if let Some(threads) = opts.get("threads") {
        let threads: usize = threads
            .parse()
            .map_err(|_| CliError::Usage(format!("invalid value `{threads}` for --threads")))?;
        detector = detector.with_threads(threads);
    }
    if let Some(mode) = parse_eval_mode(opts)? {
        detector = detector.with_eval_mode(mode);
    }
    if let Some(mode) = parse_raster_mode(opts)? {
        detector = detector.with_raster_mode(mode);
    }

    let report = detector.detect_with_threshold(&layout, layer, threshold)?;
    write_json(&out, &report.reported)?;
    if let Some(path) = opts.get("telemetry") {
        // Merge the model's persisted training telemetry with this run so
        // the file covers all eight pipeline stages.
        let merged = detector.summary().telemetry.merge(&report.telemetry);
        write_json(path, &merged)?;
    }
    if opts.has("json") {
        return Ok(serde_json::to_string_pretty(&report)?);
    }
    Ok(format!(
        "evaluated {} clips in {} eval batches, flagged {}, reported {} hotspots in {:.2?}\nreport written to {}",
        report.clips_extracted,
        report.eval_batches,
        report.clips_flagged,
        report.reported.len(),
        report.total_time(),
        out.display(),
    ))
}

fn cmd_scan(opts: &Opts) -> Result<(String, i32), CliError> {
    let journal = opts.get("journal").map(PathBuf::from);
    if opts.has("resume") && journal.is_none() {
        return Err(CliError::Usage(
            "--resume needs --journal to name the journal to replay".into(),
        ));
    }
    let cache = opts.get("cache").map(PathBuf::from);
    if opts.has("cache-verify") && cache.is_none() {
        return Err(CliError::Usage(
            "--cache-verify needs --cache to name the cache to check".into(),
        ));
    }
    let mut detector: HotspotDetector = read_json(opts.require("model")?)?;
    let layout = gdsii::read_file(opts.require("layout")?)?;
    let out = PathBuf::from(opts.require("out")?);
    let layer = LayerId::new(opts.parse("layer", 1u16)?);
    let threshold = opts.parse("threshold", detector.config().decision_threshold)?;
    if let Some(threads) = opts.get("threads") {
        let threads: usize = threads
            .parse()
            .map_err(|_| CliError::Usage(format!("invalid value `{threads}` for --threads")))?;
        detector = detector.with_threads(threads);
    }
    if let Some(mode) = parse_eval_mode(opts)? {
        detector = detector.with_eval_mode(mode);
    }
    if let Some(mode) = parse_raster_mode(opts)? {
        detector = detector.with_raster_mode(mode);
    }
    let failure_policy = match opts.get("max-failed-tiles") {
        None => FailurePolicy::Abort,
        Some(v) => FailurePolicy::SkipAndRecord {
            max_failed_tiles: v.parse().map_err(|_| {
                CliError::Usage(format!("invalid value `{v}` for --max-failed-tiles"))
            })?,
        },
    };
    let fault_plan = FaultPlan {
        seed: opts.parse("fault-seed", 0u64)?,
        panic_per_mille: opts.parse("fault-panic-per-mille", 0u16)?,
        transient_per_mille: opts.parse("fault-transient-per-mille", 0u16)?,
        stall_tasks: parse_opt_indices(opts, "fault-stall-tasks")?,
        stall_per_mille: opts.parse("fault-stall-per-mille", 0u16)?,
        stall_ms: opts.parse("fault-stall-ms", 0u64)?,
        ..Default::default()
    };
    // Graceful Ctrl-C: the handler trips this token, the scan drains and
    // reports `aborted`, and we exit with EXIT_ABORTED below. In unit
    // tests the global handler stays uninstalled so concurrently running
    // scans cannot be cancelled by a sibling test's interrupt; the real
    // binary path is exercised end-to-end by the CI SIGINT smoke.
    let cancel = CancelToken::new();
    let _sigint = (!cfg!(test)).then(|| sigint::install(cancel.clone()));
    let defaults = ScanConfig::default();
    let scan =
        ScanConfig {
            tile_cores: opts.parse("tile-cores", defaults.tile_cores)?,
            max_in_flight: opts.parse("max-in-flight", defaults.max_in_flight)?,
            tile_density: match opts.get("tile-density") {
                None => None,
                Some(v) => Some(v.parse().map_err(|_| {
                    CliError::Usage(format!("invalid value `{v}` for --tile-density"))
                })?),
            },
            resume_from: opts.has("resume").then(|| journal.clone()).flatten(),
            journal,
            failure_policy,
            fault_plan,
            cache,
            cache_verify: opts.has("cache-verify"),
            deadline: parse_opt_duration(opts, "deadline")?,
            tile_timeout: parse_opt_duration(opts, "tile-timeout")?,
            cancel: Some(cancel),
        };

    // Live observability: build the hub and its sinks before the scan and
    // tear them down after. The hub observes only — the report below is
    // bit-identical whether or not any sink is installed.
    let events_path = opts.get("events").map(PathBuf::from);
    let metrics_addr = opts.get("metrics-addr");
    let obs_interval = opts.parse("obs-interval-ms", 1000u64)?.max(10);
    let linger_ms = opts.parse("metrics-linger-ms", 0u64)?;
    let hub =
        (events_path.is_some() || metrics_addr.is_some() || opts.has("progress")).then(ObsHub::new);
    let mut server = None;
    let mut sampler = None;
    if let Some(hub) = &hub {
        if let Some(path) = &events_path {
            hub.register(Box::new(NdjsonSink::create(path)?));
        }
        if opts.has("progress") {
            hub.register(Box::new(ProgressSink::new()));
        }
        if let Some(addr) = metrics_addr {
            server = Some(MetricsServer::bind(addr, Arc::clone(hub))?);
        }
        sampler = Some(Sampler::start(
            Arc::clone(hub),
            Duration::from_millis(obs_interval),
        ));
        detector = detector.with_obs(Arc::clone(hub));
    }
    let metrics_local = server.as_ref().map(MetricsServer::local_addr);

    let report = detector.scan_layout_with_threshold(&layout, layer, &scan, threshold)?;

    // Final snapshot first, then give scrapers a chance to read the
    // totals before the listener goes away.
    if let Some(sampler) = sampler {
        sampler.stop();
    }
    if let Some(server) = server {
        if linger_ms > 0 {
            std::thread::sleep(Duration::from_millis(linger_ms));
        }
        server.shutdown();
    }
    write_json(&out, &report.reported)?;
    if let Some(path) = opts.get("telemetry") {
        let merged = detector.summary().telemetry.merge(&report.telemetry);
        write_json(path, &merged)?;
    }
    // An abort outranks quarantined tiles: the scan is incomplete, and
    // that is the fact a calling script must react to first.
    let status = if report.aborted.is_some() {
        EXIT_ABORTED
    } else if report.failed_tiles.is_empty() {
        0
    } else {
        EXIT_QUARANTINED
    };
    if opts.has("json") {
        return Ok((serde_json::to_string_pretty(&report)?, status));
    }
    let mut text = format!(
        "scanned {} of {} tiles ({} prefiltered), {} clips in {} eval batches, flagged {}, reported {} hotspots in {:.2?} ({:.0} clips/s, peak {} tiles in flight)",
        report.tiles_scanned,
        report.tiles_total,
        report.tiles_prefiltered,
        report.clips_extracted,
        report.eval_batches,
        report.clips_flagged,
        report.reported.len(),
        report.scan_time,
        report.clips_per_second(),
        report.peak_in_flight,
    );
    if report.resumed_tiles > 0 {
        text.push_str(&format!(
            "\nresumed {} tile(s) from the journal",
            report.resumed_tiles
        ));
    }
    if report.cache_hits > 0 || report.cache_misses > 0 {
        text.push_str(&format!(
            "\ncache: {} hit(s), {} miss(es)",
            report.cache_hits, report.cache_misses
        ));
    }
    if report.retries > 0 {
        text.push_str(&format!("\nretried {} tile(s) once", report.retries));
    }
    if !report.failed_tiles.is_empty() {
        text.push_str(&format!(
            "\nquarantined {} tile(s):",
            report.failed_tiles.len()
        ));
        for failed in &report.failed_tiles {
            text.push_str(&format!("\n  tile {}: {}", failed.tile, failed.reason));
        }
    }
    if let Some(reason) = report.aborted {
        text.push_str(&format!(
            "\nscan aborted ({reason}) after {} of {} tiles; the report is partial — \
             re-run with --journal <path> --resume to finish it",
            report.tiles_scanned, report.tiles_total,
        ));
    }
    if let Some(addr) = metrics_local {
        text.push_str(&format!("\nmetrics were served at http://{addr}/metrics"));
    }
    if let Some(path) = &events_path {
        text.push_str(&format!("\nevent log written to {}", path.display()));
    }
    text.push_str(&format!("\nreport written to {}", out.display()));
    Ok((text, status))
}

fn cmd_score(opts: &Opts) -> Result<String, CliError> {
    let reported: Vec<ClipWindow> = read_json(opts.require("report")?)?;
    let actual: Vec<ClipWindow> = read_json(opts.require("actual")?)?;
    let area: f64 = opts
        .require("area-um2")?
        .parse()
        .map_err(|_| CliError::Usage("--area-um2 must be a number".into()))?;
    let min_overlap = opts.parse("min-overlap", 0.2f64)?;
    let eval = hotspot_core::score(
        &reported,
        &actual,
        min_overlap,
        area,
        std::time::Duration::ZERO,
    );
    if opts.has("json") {
        return Ok(serde_json::to_string_pretty(&eval)?);
    }
    Ok(format!(
        "{eval}\nfalse alarm: {:.6} extras/um^2",
        eval.false_alarm()
    ))
}

fn cmd_info(opts: &Opts) -> Result<String, CliError> {
    let layout = gdsii::read_file(opts.require("layout")?)?;
    let mut out = format!(
        "layout `{}`: {} polygons on {} layer(s)\ntelemetry schema: v{}\n",
        layout.name(),
        layout.polygon_count(),
        layout.layers().count(),
        hotspot_core::TELEMETRY_SCHEMA_VERSION,
    );
    if let Some(bbox) = layout.bbox() {
        out.push_str(&format!(
            "bbox: {} — {} ({:.1} x {:.1} um)\n",
            bbox.min(),
            bbox.max(),
            bbox.width() as f64 / 1000.0,
            bbox.height() as f64 / 1000.0
        ));
    }
    for layer in layout.layers() {
        out.push_str(&format!(
            "  {layer}: {} polygons, {:.1} um^2 of metal\n",
            layout.polygons(layer).len(),
            layout.layer_area(layer) as f64 / 1e6
        ));
    }
    Ok(out)
}

fn cmd_events(opts: &Opts) -> Result<String, CliError> {
    let path = opts.require("file")?;
    // `read_events` rejects unknown schema versions and malformed lines
    // with an InvalidData error naming the offending line, which surfaces
    // here as a non-zero exit.
    let records = hotspot_core::obs::read_events(path)?;
    if opts.has("json") {
        return Ok(serde_json::to_string_pretty(&records)?);
    }
    let mut scans = 0usize;
    let mut batches = 0usize;
    let mut snapshots = 0usize;
    let mut quarantined = 0usize;
    let mut cache_hits = 0usize;
    let mut cache_misses = 0usize;
    let mut aborted = 0usize;
    let mut timed_out = 0usize;
    for record in &records {
        match record.event {
            ObsEvent::ScanStarted { .. } => scans += 1,
            ObsEvent::BatchCompleted { .. } => batches += 1,
            ObsEvent::Snapshot { .. } => snapshots += 1,
            ObsEvent::TileQuarantined { .. } => quarantined += 1,
            ObsEvent::CacheHit { .. } => cache_hits += 1,
            ObsEvent::CacheMiss { .. } => cache_misses += 1,
            ObsEvent::ScanAborted { .. } => aborted += 1,
            ObsEvent::TileTimedOut { .. } => timed_out += 1,
            _ => {}
        }
    }
    // An empty (or header-only) log is a valid summary, not an error: a
    // scan aborted right after opening its sink leaves exactly that.
    Ok(format!(
        "{} event(s), schema v{}: {} scan(s), {} batch(es), {} snapshot(s), {} quarantined tile(s), {} timed-out tile(s), {} aborted scan(s), {} cache hit(s), {} cache miss(es)",
        records.len(),
        hotspot_core::OBS_SCHEMA_VERSION,
        scans,
        batches,
        snapshots,
        quarantined,
        timed_out,
        aborted,
        cache_hits,
        cache_misses,
    ))
}

fn cmd_render(opts: &Opts) -> Result<String, CliError> {
    let layout = gdsii::read_file(opts.require("layout")?)?;
    let out = PathBuf::from(opts.require("out")?);
    let mut options = hotspot_layout::svg::RenderOptions::default();
    if let Some(path) = opts.get("report") {
        options.reported = read_json(path)?;
    }
    if let Some(path) = opts.get("actual") {
        options.actual = read_json(path)?;
    }
    hotspot_layout::svg::render_to_file(&layout, &options, &out)?;
    Ok(format!(
        "rendered {} polygons (+{} reported, {} actual windows) to {}",
        layout.polygon_count(),
        options.reported.len(),
        options.actual.len(),
        out.display(),
    ))
}

fn write_json<T: serde::Serialize>(path: impl AsRef<Path>, value: &T) -> Result<(), CliError> {
    let file = std::fs::File::create(path)?;
    serde_json::to_writer(std::io::BufWriter::new(file), value)?;
    Ok(())
}

fn read_json<T: serde::de::DeserializeOwned>(path: impl AsRef<Path>) -> Result<T, CliError> {
    let file = std::fs::File::open(path)?;
    Ok(serde_json::from_reader(std::io::BufReader::new(file))?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    fn workdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hotspot_cli_{name}"));
        std::fs::create_dir_all(&dir).expect("tempdir");
        dir
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&argv(&["help"])).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors() {
        let err = run(&argv(&["frobnicate"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn missing_flags_error() {
        let err = run(&argv(&["generate", "--name", "array_benchmark1"])).unwrap_err();
        assert!(err.to_string().contains("--out"));
        let err = run(&argv(&["generate", "--name"])).unwrap_err();
        assert!(err.to_string().contains("needs a value"));
    }

    #[test]
    fn unknown_benchmark_errors() {
        let dir = workdir("unknown_bm");
        let err = run(&argv(&[
            "generate",
            "--name",
            "bogus",
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("unknown benchmark"));
    }

    #[test]
    fn full_cli_round_trip() {
        // generate -> train -> detect -> score, all through the public CLI.
        let dir = workdir("roundtrip");
        let out = run(&argv(&[
            "generate",
            "--name",
            "array_benchmark1",
            "--scale",
            "tiny",
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("generated"));

        let model = dir.join("model.json");
        let out = run(&argv(&[
            "train",
            "--training",
            dir.join("training.json").to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
            "--threads",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("trained"), "{out}");

        let report = dir.join("report.json");
        let telemetry = dir.join("telemetry.json");
        let out = run(&argv(&[
            "detect",
            "--model",
            model.to_str().unwrap(),
            "--layout",
            dir.join("layout.gds").to_str().unwrap(),
            "--out",
            report.to_str().unwrap(),
            "--threads",
            "2",
            "--telemetry",
            telemetry.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("reported"), "{out}");

        // The streaming scan reports the same hotspot set through the CLI.
        let scan_report = dir.join("scan_report.json");
        let out = run(&argv(&[
            "scan",
            "--model",
            model.to_str().unwrap(),
            "--layout",
            dir.join("layout.gds").to_str().unwrap(),
            "--out",
            scan_report.to_str().unwrap(),
            "--threads",
            "2",
            "--tile-cores",
            "8",
            "--max-in-flight",
            "4",
        ]))
        .unwrap();
        assert!(out.contains("scanned"), "{out}");
        assert_eq!(
            std::fs::read_to_string(&report).unwrap(),
            std::fs::read_to_string(&scan_report).unwrap(),
            "scan and detect must write identical reports"
        );

        // --json emits the full machine-readable scan report.
        let out = run(&argv(&[
            "scan",
            "--json",
            "--model",
            model.to_str().unwrap(),
            "--layout",
            dir.join("layout.gds").to_str().unwrap(),
            "--out",
            scan_report.to_str().unwrap(),
            "--threads",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("\"tiles_scanned\""), "{out}");
        assert!(out.contains("\"peak_in_flight\""), "{out}");

        // The telemetry file is the merged training + detection record:
        // valid JSON covering all eight pipeline stages (the density
        // prefilter is zero-filled — it only does work in `scan`).
        let t: hotspot_core::PipelineTelemetry =
            serde_json::from_str(&std::fs::read_to_string(&telemetry).unwrap()).unwrap();
        assert_eq!(t.schema_version, hotspot_core::TELEMETRY_SCHEMA_VERSION);
        assert_eq!(t.stages.len(), 8, "expected all eight stages: {t:?}");
        assert!(t
            .stages
            .iter()
            .all(|s| s.threads_used >= 1 || s.items_in == 0));

        let out = run(&argv(&[
            "score",
            "--report",
            report.to_str().unwrap(),
            "--actual",
            dir.join("actual.json").to_str().unwrap(),
            "--area-um2",
            "207",
        ]))
        .unwrap();
        assert!(out.contains("#hit"), "{out}");

        // --json switches score output to machine-readable form.
        let out = run(&argv(&[
            "score",
            "--json",
            "--report",
            report.to_str().unwrap(),
            "--actual",
            dir.join("actual.json").to_str().unwrap(),
            "--area-um2",
            "207",
        ]))
        .unwrap();
        assert!(out.trim_start().starts_with('{'), "{out}");
        assert!(out.contains("\"hits\""), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_journal_resume_and_quarantine_flags() {
        let dir = workdir("fault_flags");
        run(&argv(&[
            "generate",
            "--name",
            "array_benchmark1",
            "--scale",
            "tiny",
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        let model = dir.join("model.json");
        run(&argv(&[
            "train",
            "--training",
            dir.join("training.json").to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
            "--threads",
            "2",
        ]))
        .unwrap();

        // --resume without --journal is a usage error.
        let err = run(&argv(&[
            "scan", "--resume", "--model", "x", "--layout", "y", "--out", "z",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--journal"), "{err}");

        // A journaled scan, then a resumed one: same report, exit 0, and
        // the resumed run replays every tile from the journal.
        let journal = dir.join("scan.journal");
        let report = dir.join("report.json");
        let scan_args = |extra: &[&str]| {
            let mut args = argv(&[
                "scan",
                "--model",
                model.to_str().unwrap(),
                "--layout",
                dir.join("layout.gds").to_str().unwrap(),
                "--out",
                report.to_str().unwrap(),
                "--threads",
                "2",
                "--journal",
                journal.to_str().unwrap(),
            ]);
            args.extend(extra.iter().map(|s| s.to_string()));
            args
        };
        let (out, status) = run_with_status(&scan_args(&[])).unwrap();
        assert_eq!(status, 0, "{out}");
        let first = std::fs::read_to_string(&report).unwrap();

        let (out, status) = run_with_status(&scan_args(&["--resume"])).unwrap();
        assert_eq!(status, 0, "{out}");
        assert!(out.contains("resumed"), "{out}");
        assert_eq!(std::fs::read_to_string(&report).unwrap(), first);

        // Injected panics on every tile + quarantine: completes with the
        // advisory exit code and lists the quarantined tiles.
        let fresh_journal = dir.join("faulted.journal");
        let (out, status) = run_with_status(&argv(&[
            "scan",
            "--model",
            model.to_str().unwrap(),
            "--layout",
            dir.join("layout.gds").to_str().unwrap(),
            "--out",
            report.to_str().unwrap(),
            "--threads",
            "2",
            "--journal",
            fresh_journal.to_str().unwrap(),
            "--max-failed-tiles",
            "10000",
            "--fault-seed",
            "42",
            "--fault-panic-per-mille",
            "1000",
        ]))
        .unwrap();
        assert_eq!(status, EXIT_QUARANTINED, "{out}");
        assert!(out.contains("quarantined"), "{out}");
        assert!(out.contains("injected fault"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_cache_flags_warm_rescan_is_identical() {
        let dir = workdir("cache_flags");
        run(&argv(&[
            "generate",
            "--name",
            "array_benchmark1",
            "--scale",
            "tiny",
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        let model = dir.join("model.json");
        run(&argv(&[
            "train",
            "--training",
            dir.join("training.json").to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
            "--threads",
            "2",
        ]))
        .unwrap();

        // --cache-verify without --cache is a usage error.
        let err = run(&argv(&[
            "scan",
            "--cache-verify",
            "--model",
            "x",
            "--layout",
            "y",
            "--out",
            "z",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--cache"), "{err}");

        let cache = dir.join("tiles.cache");
        let report = dir.join("report.json");
        let scan_args = |extra: &[&str]| {
            let mut args = argv(&[
                "scan",
                "--model",
                model.to_str().unwrap(),
                "--layout",
                dir.join("layout.gds").to_str().unwrap(),
                "--out",
                report.to_str().unwrap(),
                "--threads",
                "2",
                "--cache",
                cache.to_str().unwrap(),
            ]);
            args.extend(extra.iter().map(|s| s.to_string()));
            args
        };

        // Cold scan populates the cache; all tiles miss.
        let (out, status) = run_with_status(&scan_args(&[])).unwrap();
        assert_eq!(status, 0, "{out}");
        assert!(out.contains("miss(es)"), "{out}");
        assert!(cache.exists());
        let cold = std::fs::read_to_string(&report).unwrap();

        // Warm re-scan: every tile hits, report byte-identical.
        let (out, status) = run_with_status(&scan_args(&[])).unwrap();
        assert_eq!(status, 0, "{out}");
        assert!(out.contains("cache:"), "{out}");
        assert!(out.contains(" 0 miss(es)"), "{out}");
        assert_eq!(std::fs::read_to_string(&report).unwrap(), cold);

        // Paranoid verify recomputes hits and still agrees.
        let (out, status) = run_with_status(&scan_args(&["--cache-verify"])).unwrap();
        assert_eq!(status, 0, "{out}");
        assert_eq!(std::fs::read_to_string(&report).unwrap(), cold);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eval_mode_flag_selects_engine_and_rejects_bad_values() {
        let dir = workdir("eval_mode");
        run(&argv(&[
            "generate",
            "--name",
            "array_benchmark1",
            "--scale",
            "tiny",
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        let model = dir.join("model.json");
        run(&argv(&[
            "train",
            "--training",
            dir.join("training.json").to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
            "--threads",
            "2",
        ]))
        .unwrap();

        let report = dir.join("report.json");
        let detect_args = |mode: &str| {
            argv(&[
                "detect",
                "--model",
                model.to_str().unwrap(),
                "--layout",
                dir.join("layout.gds").to_str().unwrap(),
                "--out",
                report.to_str().unwrap(),
                "--threads",
                "2",
                "--eval-mode",
                mode,
            ])
        };

        // Both engines flag the identical hotspot set.
        run(&detect_args("compiled")).unwrap();
        let compiled = std::fs::read_to_string(&report).unwrap();
        run(&detect_args("reference")).unwrap();
        let reference = std::fs::read_to_string(&report).unwrap();
        assert_eq!(compiled, reference, "eval modes disagree via the CLI");

        // Bad values are usage errors (exit code 2) on detect and scan.
        let err = run(&detect_args("bogus")).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("--eval-mode"), "{err}");
        let err = run(&argv(&[
            "scan",
            "--model",
            model.to_str().unwrap(),
            "--layout",
            dir.join("layout.gds").to_str().unwrap(),
            "--out",
            report.to_str().unwrap(),
            "--eval-mode",
            "fast",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn raster_mode_flag_selects_rasteriser_and_rejects_bad_values() {
        let dir = workdir("raster_mode");
        run(&argv(&[
            "generate",
            "--name",
            "array_benchmark1",
            "--scale",
            "tiny",
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        let model = dir.join("model.json");
        run(&argv(&[
            "train",
            "--training",
            dir.join("training.json").to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
            "--threads",
            "2",
        ]))
        .unwrap();

        let report = dir.join("report.json");
        let scan_args = |mode: &str| {
            argv(&[
                "scan",
                "--model",
                model.to_str().unwrap(),
                "--layout",
                dir.join("layout.gds").to_str().unwrap(),
                "--out",
                report.to_str().unwrap(),
                "--threads",
                "2",
                "--raster-mode",
                mode,
            ])
        };

        // Both rasterisers produce byte-identical reports.
        run(&scan_args("sat")).unwrap();
        let sat = std::fs::read_to_string(&report).unwrap();
        run(&scan_args("reference")).unwrap();
        let reference = std::fs::read_to_string(&report).unwrap();
        assert_eq!(sat, reference, "raster modes disagree via the CLI");

        // Bad values are usage errors (exit code 2) on scan and detect.
        let err = run(&scan_args("bilinear")).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("--raster-mode"), "{err}");
        let err = run(&argv(&[
            "detect",
            "--model",
            model.to_str().unwrap(),
            "--layout",
            dir.join("layout.gds").to_str().unwrap(),
            "--out",
            report.to_str().unwrap(),
            "--raster-mode",
            "naive",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_observability_flags_leave_report_identical() {
        let dir = workdir("obs_flags");
        run(&argv(&[
            "generate",
            "--name",
            "array_benchmark1",
            "--scale",
            "tiny",
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        let model = dir.join("model.json");
        run(&argv(&[
            "train",
            "--training",
            dir.join("training.json").to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
            "--threads",
            "2",
        ]))
        .unwrap();

        let report = dir.join("report.json");
        let base_args = |report: &Path, extra: &[&str]| {
            let mut args = argv(&[
                "scan",
                "--model",
                model.to_str().unwrap(),
                "--layout",
                dir.join("layout.gds").to_str().unwrap(),
                "--out",
                report.to_str().unwrap(),
                "--threads",
                "2",
            ]);
            args.extend(extra.iter().map(|s| s.to_string()));
            args
        };

        // Sink-less baseline.
        run(&base_args(&report, &[])).unwrap();
        let baseline = std::fs::read_to_string(&report).unwrap();

        // Full observability: NDJSON events, progress, and a metrics
        // endpoint on an ephemeral port. The written report must not
        // change by a single byte.
        let observed = dir.join("observed.json");
        let events = dir.join("events.ndjson");
        let out = run(&base_args(
            &observed,
            &[
                "--events",
                events.to_str().unwrap(),
                "--progress",
                "--metrics-addr",
                "127.0.0.1:0",
                "--obs-interval-ms",
                "50",
            ],
        ))
        .unwrap();
        assert!(out.contains("event log written"), "{out}");
        assert!(out.contains("/metrics"), "{out}");
        assert_eq!(std::fs::read_to_string(&observed).unwrap(), baseline);

        // The event log round-trips through the schema-versioned reader.
        let out = run(&argv(&["events", "--file", events.to_str().unwrap()])).unwrap();
        assert!(out.contains("1 scan(s)"), "{out}");
        assert!(out.contains("schema v1"), "{out}");
        let out = run(&argv(&[
            "events",
            "--json",
            "--file",
            events.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("\"ScanStarted\""), "{out}");

        // A corrupt log is an error, not a silent success.
        std::fs::write(&events, "not json\n").unwrap();
        let err = run(&argv(&["events", "--file", events.to_str().unwrap()])).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn exit_codes_distinguish_error_classes() {
        assert_eq!(CliError::Usage("x".into()).exit_code(), 2);
        assert_eq!(
            CliError::Io(std::io::Error::new(std::io::ErrorKind::NotFound, "x")).exit_code(),
            3
        );
        assert_eq!(
            CliError::Pipeline(hotspot_core::DetectError::NoHotspots).exit_code(),
            6
        );
        // A missing model file surfaces as an I/O error, not usage.
        let err = run(&argv(&[
            "detect",
            "--model",
            "/nonexistent/model.json",
            "--layout",
            "/nonexistent/layout.gds",
            "--out",
            "/tmp/out.json",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 3);
    }

    #[test]
    fn info_prints_telemetry_schema_version() {
        let dir = workdir("schema");
        run(&argv(&[
            "generate",
            "--name",
            "array_benchmark1",
            "--scale",
            "tiny",
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        let out = run(&argv(&[
            "info",
            "--layout",
            dir.join("layout.gds").to_str().unwrap(),
        ]))
        .unwrap();
        assert!(
            out.contains(&format!(
                "telemetry schema: v{}",
                hotspot_core::TELEMETRY_SCHEMA_VERSION
            )),
            "{out}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn render_produces_svg() {
        let dir = workdir("render");
        run(&argv(&[
            "generate",
            "--name",
            "array_benchmark1",
            "--scale",
            "tiny",
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        let svg = dir.join("layout.svg");
        let out = run(&argv(&[
            "render",
            "--layout",
            dir.join("layout.gds").to_str().unwrap(),
            "--actual",
            dir.join("actual.json").to_str().unwrap(),
            "--out",
            svg.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("rendered"), "{out}");
        let content = std::fs::read_to_string(&svg).unwrap();
        assert!(content.contains("data-overlay=\"actual\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duration_and_stall_index_flag_parsing() {
        let opts = parse_flags(&argv(&[
            "--deadline",
            "30s",
            "--tile-timeout",
            "500ms",
            "--fault-stall-tasks",
            "3, 17",
        ]))
        .unwrap();
        assert_eq!(
            parse_opt_duration(&opts, "deadline").unwrap(),
            Some(Duration::from_secs(30))
        );
        assert_eq!(
            parse_opt_duration(&opts, "tile-timeout").unwrap(),
            Some(Duration::from_millis(500))
        );
        assert_eq!(
            parse_opt_indices(&opts, "fault-stall-tasks").unwrap(),
            [3, 17]
        );
        // Absent flags parse to their empty defaults.
        assert_eq!(parse_opt_duration(&opts, "absent").unwrap(), None);
        assert!(parse_opt_indices(&opts, "absent").unwrap().is_empty());

        // `2m` is minutes, a bare integer is seconds, `0` is legal.
        let opts = parse_flags(&argv(&["--deadline", "2m", "--tile-timeout", "45"])).unwrap();
        assert_eq!(
            parse_opt_duration(&opts, "deadline").unwrap(),
            Some(Duration::from_secs(120))
        );
        assert_eq!(
            parse_opt_duration(&opts, "tile-timeout").unwrap(),
            Some(Duration::from_secs(45))
        );
        let opts = parse_flags(&argv(&["--deadline", "0"])).unwrap();
        assert_eq!(
            parse_opt_duration(&opts, "deadline").unwrap(),
            Some(Duration::ZERO)
        );

        // Garbage is a usage error naming the flag.
        for bad in ["1.5s", "10x", "ms", "s", "-3s", ""] {
            let opts = parse_flags(&argv(&["--deadline", bad])).unwrap();
            let err = parse_opt_duration(&opts, "deadline").unwrap_err();
            assert_eq!(err.exit_code(), 2, "`{bad}` must be a usage error");
            assert!(err.to_string().contains("--deadline"), "{err}");
        }
        let opts = parse_flags(&argv(&["--fault-stall-tasks", "3,x"])).unwrap();
        let err = parse_opt_indices(&opts, "fault-stall-tasks").unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn scan_deadline_aborts_resumably_with_exit_8() {
        let dir = workdir("deadline_flags");
        run(&argv(&[
            "generate",
            "--name",
            "array_benchmark1",
            "--scale",
            "tiny",
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        let model = dir.join("model.json");
        run(&argv(&[
            "train",
            "--training",
            dir.join("training.json").to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
            "--threads",
            "2",
        ]))
        .unwrap();

        let journal = dir.join("deadline.journal");
        let report = dir.join("report.json");
        let events = dir.join("events.ndjson");
        let scan_args = |extra: &[&str]| {
            let mut args = argv(&[
                "scan",
                "--model",
                model.to_str().unwrap(),
                "--layout",
                dir.join("layout.gds").to_str().unwrap(),
                "--out",
                report.to_str().unwrap(),
                "--threads",
                "2",
                "--journal",
                journal.to_str().unwrap(),
            ]);
            args.extend(extra.iter().map(|s| s.to_string()));
            args
        };

        // A zero deadline aborts before the first batch: exit 8, the
        // message names the reason and points at --resume.
        let (out, status) = run_with_status(&scan_args(&[
            "--deadline",
            "0",
            "--events",
            events.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(status, EXIT_ABORTED, "{out}");
        assert!(out.contains("scan aborted (deadline_exceeded)"), "{out}");
        assert!(out.contains("--resume"), "{out}");
        assert!(out.contains("scanned 0 of"), "{out}");

        // The event log records the abort and summarises cleanly.
        let out = run(&argv(&["events", "--file", events.to_str().unwrap()])).unwrap();
        assert!(out.contains("1 aborted scan(s)"), "{out}");

        // Resuming without a deadline finishes the scan: exit 0 and a
        // report byte-identical to a never-interrupted scan's.
        let (out, status) = run_with_status(&scan_args(&["--resume"])).unwrap();
        assert_eq!(status, 0, "{out}");
        let resumed = std::fs::read_to_string(&report).unwrap();
        let clean_report = dir.join("clean.json");
        run(&argv(&[
            "scan",
            "--model",
            model.to_str().unwrap(),
            "--layout",
            dir.join("layout.gds").to_str().unwrap(),
            "--out",
            clean_report.to_str().unwrap(),
            "--threads",
            "2",
        ]))
        .unwrap();
        assert_eq!(std::fs::read_to_string(&clean_report).unwrap(), resumed);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_tile_timeout_quarantines_stalled_tiles() {
        let dir = workdir("timeout_flags");
        run(&argv(&[
            "generate",
            "--name",
            "array_benchmark1",
            "--scale",
            "tiny",
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        let model = dir.join("model.json");
        run(&argv(&[
            "train",
            "--training",
            dir.join("training.json").to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
            "--threads",
            "2",
        ]))
        .unwrap();

        // Stall every tile well past its soft budget: the scan completes
        // (exit 7, not 8 — no abort) with every tile quarantined as a
        // timeout, and the summary prints the deterministic reason.
        let report = dir.join("report.json");
        let (out, status) = run_with_status(&argv(&[
            "scan",
            "--model",
            model.to_str().unwrap(),
            "--layout",
            dir.join("layout.gds").to_str().unwrap(),
            "--out",
            report.to_str().unwrap(),
            "--threads",
            "2",
            "--max-failed-tiles",
            "10000",
            "--tile-timeout",
            "50ms",
            "--fault-stall-per-mille",
            "1000",
            "--fault-stall-ms",
            "150",
        ]))
        .unwrap();
        assert_eq!(status, EXIT_QUARANTINED, "{out}");
        assert!(out.contains("quarantined"), "{out}");
        assert!(out.contains("soft time budget of 50 ms"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn events_summary_tolerates_empty_and_header_only_logs() {
        let dir = workdir("events_empty");
        let log = dir.join("empty.ndjson");
        std::fs::write(&log, "").unwrap();
        let out = run(&argv(&["events", "--file", log.to_str().unwrap()])).unwrap();
        assert!(out.contains("0 event(s)"), "{out}");
        assert!(out.contains("0 aborted scan(s)"), "{out}");
        // Blank lines only ("header-only" log from a scan killed right
        // after the sink opened) summarise the same way.
        std::fs::write(&log, "\n\n").unwrap();
        let out = run(&argv(&["events", "--file", log.to_str().unwrap()])).unwrap();
        assert!(out.contains("0 event(s)"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn info_reports_layout_stats() {
        let dir = workdir("info");
        run(&argv(&[
            "generate",
            "--name",
            "array_benchmark5",
            "--scale",
            "tiny",
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        let out = run(&argv(&[
            "info",
            "--layout",
            dir.join("layout.gds").to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("polygons"), "{out}");
        assert!(out.contains("bbox"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
