//! Graceful SIGINT (Ctrl-C) handling for the `scan` subcommand.
//!
//! The handler itself does the absolute minimum that is async-signal-safe:
//! it stores `true` into a process-global atomic. A detached watcher
//! thread polls that flag every ~25 ms and trips the scan's
//! [`CancelToken`], which the streaming scan loop observes at the next
//! batch boundary — so an interrupted scan drains its in-flight window,
//! syncs its journal, and exits with the *aborted-but-resumable* status
//! instead of dying mid-write. Re-running with `--resume` finishes the
//! scan with a byte-identical report.
//!
//! Installation hands back a [`SigintGuard`]; dropping it stops the
//! watcher and restores the previous signal disposition, so Ctrl-C goes
//! back to killing the process once the scan is over (e.g. during
//! `--metrics-linger-ms`).
#![allow(unsafe_code)]

use hotspot_core::CancelToken;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Set by the signal handler, consumed (swapped back to `false`) by the
/// watcher thread of the scan it aborts.
static INTERRUPTED: AtomicBool = AtomicBool::new(false);
/// Whether a handler is currently installed, so nested installs (unit
/// tests running scans concurrently) don't fight over the disposition.
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// How often the watcher thread polls the interrupt flag.
const POLL: Duration = Duration::from_millis(25);

#[cfg(unix)]
mod imp {
    /// POSIX signal number for Ctrl-C.
    pub const SIGINT: i32 = 2;
    /// `SIG_ERR` as returned by `signal(2)`.
    pub const SIG_ERR: usize = usize::MAX;

    extern "C" {
        /// C standard library `signal(2)`: handlers are passed and
        /// returned as plain addresses so no libc types are needed.
        pub fn signal(signum: i32, handler: usize) -> usize;
    }

    /// The installed handler: one relaxed atomic store, nothing else —
    /// the only operations permitted in async-signal context.
    pub extern "C" fn on_sigint(_sig: i32) {
        super::INTERRUPTED.store(true, std::sync::atomic::Ordering::Relaxed);
    }
}

/// Keeps the SIGINT watcher alive; dropping it stops the watcher thread
/// and restores the previous signal disposition (if this guard was the
/// one that installed the handler).
pub struct SigintGuard {
    stop: Arc<AtomicBool>,
    /// Previous handler address to restore, when we replaced it.
    restore: Option<usize>,
}

impl Drop for SigintGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        #[cfg(unix)]
        if let Some(prev) = self.restore {
            unsafe { imp::signal(imp::SIGINT, prev) };
            INSTALLED.store(false, Ordering::SeqCst);
        }
    }
}

/// Installs the SIGINT handler (first caller wins) and spawns a watcher
/// thread that trips `token` when Ctrl-C arrives. Infallible by design:
/// if the handler or thread cannot be set up the scan simply runs
/// without graceful interrupt, which is exactly the pre-existing
/// behaviour.
pub fn install(token: CancelToken) -> SigintGuard {
    let mut restore = None;
    #[cfg(unix)]
    if !INSTALLED.swap(true, Ordering::SeqCst) {
        let handler: extern "C" fn(i32) = imp::on_sigint;
        let prev = unsafe { imp::signal(imp::SIGINT, handler as usize) };
        if prev == imp::SIG_ERR {
            INSTALLED.store(false, Ordering::SeqCst);
        } else {
            restore = Some(prev);
        }
    }
    let stop = Arc::new(AtomicBool::new(false));
    let watcher_stop = Arc::clone(&stop);
    let spawned = std::thread::Builder::new()
        .name("sigint-watch".into())
        .spawn(move || {
            while !watcher_stop.load(Ordering::Relaxed) {
                // `swap` consumes the flag so one Ctrl-C aborts one scan;
                // a process that scans again starts uninterrupted.
                if INTERRUPTED.swap(false, Ordering::Relaxed) {
                    token.cancel();
                    return;
                }
                std::thread::park_timeout(POLL);
            }
        });
    if spawned.is_err() {
        stop.store(true, Ordering::Relaxed);
    }
    SigintGuard { stop, restore }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::sync::Mutex;
    use std::time::Instant;

    /// The interrupt flag is process-global, so the tests that poke it
    /// must not overlap.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn handler_trips_the_token_via_the_watcher() {
        let _serial = SERIAL.lock().unwrap();
        INTERRUPTED.store(false, Ordering::Relaxed);
        let token = CancelToken::new();
        let guard = install(token.clone());
        // Invoke the handler exactly as the kernel would.
        imp::on_sigint(imp::SIGINT);
        let started = Instant::now();
        while !token.is_cancelled() {
            assert!(
                started.elapsed() < Duration::from_secs(5),
                "watcher never tripped the token"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(guard);
    }

    #[test]
    fn dropping_the_guard_stops_the_watcher() {
        let _serial = SERIAL.lock().unwrap();
        INTERRUPTED.store(false, Ordering::Relaxed);
        let token = CancelToken::new();
        let guard = install(token.clone());
        drop(guard);
        // Give the watcher a full poll interval to observe the stop flag,
        // then raise: with the watcher gone nothing consumes the
        // interrupt, and the token must stay untripped.
        std::thread::sleep(POLL * 3);
        imp::on_sigint(imp::SIGINT);
        std::thread::sleep(POLL * 3);
        assert!(!token.is_cancelled());
        INTERRUPTED.store(false, Ordering::Relaxed);
    }
}
