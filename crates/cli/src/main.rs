//! The `hotspot` binary: thin wrapper around [`hotspot_cli::run_with_status`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match hotspot_cli::run_with_status(&args) {
        Ok((output, status)) => {
            println!("{output}");
            if status != 0 {
                std::process::exit(status);
            }
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(e.exit_code());
        }
    }
}
