//! The `hotspot` binary: thin wrapper around [`hotspot_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match hotspot_cli::run(&args) {
        Ok(output) => println!("{output}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(e.exit_code());
        }
    }
}
