//! Axis-aligned rectangles with closed-open extent.

use crate::{Coord, Point};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned rectangle spanning `[min.x, max.x) × [min.y, max.y)`.
///
/// The closed-open convention means rectangles that share only an edge have
/// zero [`overlap_area`](Rect::overlaps) but [`touch`](Rect::touches).
/// Degenerate (zero-width or zero-height) rectangles are permitted and are
/// reported as [`empty`](Rect::is_empty).
///
/// ```
/// use hotspot_geom::{Point, Rect};
/// let r = Rect::new(Point::new(0, 0), Point::new(40, 30));
/// assert_eq!(r.width(), 40);
/// assert_eq!(r.height(), 30);
/// assert_eq!(r.area(), 1200);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Rect {
    min: Point,
    max: Point,
}

impl Rect {
    /// Creates a rectangle from two opposite corners (any order).
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            min: a.min_components(b),
            max: a.max_components(b),
        }
    }

    /// Creates a rectangle from its four extents.
    pub fn from_extents(x0: Coord, y0: Coord, x1: Coord, y1: Coord) -> Self {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    /// Creates a rectangle from its bottom-left corner plus width and height.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is negative.
    pub fn from_origin_size(origin: Point, width: Coord, height: Coord) -> Self {
        assert!(width >= 0 && height >= 0, "negative rectangle size");
        Rect {
            min: origin,
            max: origin + Point::new(width, height),
        }
    }

    /// A square of side `side` centred on `center` (rounded down when `side`
    /// is odd).
    pub fn centered_square(center: Point, side: Coord) -> Self {
        let half = side / 2;
        Rect {
            min: center - Point::new(half, half),
            max: center - Point::new(half, half) + Point::new(side, side),
        }
    }

    /// Bottom-left corner.
    pub fn min(&self) -> Point {
        self.min
    }

    /// Top-right corner (exclusive).
    pub fn max(&self) -> Point {
        self.max
    }

    /// Width in nanometres.
    pub fn width(&self) -> Coord {
        self.max.x - self.min.x
    }

    /// Height in nanometres.
    pub fn height(&self) -> Coord {
        self.max.y - self.min.y
    }

    /// Area in nm².
    pub fn area(&self) -> i64 {
        self.width() * self.height()
    }

    /// `true` if the rectangle has zero area.
    pub fn is_empty(&self) -> bool {
        self.width() == 0 || self.height() == 0
    }

    /// Geometric centre (rounded toward the bottom-left on odd spans).
    pub fn center(&self) -> Point {
        Point::new((self.min.x + self.max.x) / 2, (self.min.y + self.max.y) / 2)
    }

    /// The four corners in counterclockwise order starting at the bottom-left.
    pub fn corners(&self) -> [Point; 4] {
        [
            self.min,
            Point::new(self.max.x, self.min.y),
            self.max,
            Point::new(self.min.x, self.max.y),
        ]
    }

    /// `true` if `p` lies inside the closed-open extent.
    pub fn contains_point(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x < self.max.x && p.y >= self.min.y && p.y < self.max.y
    }

    /// `true` if `other` lies entirely within `self` (closed containment;
    /// shared edges count as contained).
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.min.x >= self.min.x
            && other.min.y >= self.min.y
            && other.max.x <= self.max.x
            && other.max.y <= self.max.y
    }

    /// `true` if the two rectangles share interior area.
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.min.x < other.max.x
            && other.min.x < self.max.x
            && self.min.y < other.max.y
            && other.min.y < self.max.y
    }

    /// `true` if the rectangles overlap or share a boundary point.
    pub fn touches(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// Intersection, or `None` when the rectangles share no interior area.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.overlaps(other) {
            return None;
        }
        Some(Rect {
            min: self.min.max_components(other.min),
            max: self.max.min_components(other.max),
        })
    }

    /// Overlap area in nm² (0 when disjoint).
    pub fn overlap_area(&self, other: &Rect) -> i64 {
        self.intersection(other).map_or(0, |r| r.area())
    }

    /// Smallest rectangle covering both inputs.
    pub fn union_bbox(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect {
            min: self.min.min_components(other.min),
            max: self.max.max_components(other.max),
        }
    }

    /// Bounding box of an iterator of rectangles, ignoring empty ones.
    /// Returns `None` when the iterator yields no non-empty rectangle.
    pub fn bbox_of<'a, I: IntoIterator<Item = &'a Rect>>(rects: I) -> Option<Rect> {
        let mut acc: Option<Rect> = None;
        for r in rects {
            if r.is_empty() {
                continue;
            }
            acc = Some(match acc {
                Some(a) => a.union_bbox(r),
                None => *r,
            });
        }
        acc
    }

    /// Translates the rectangle by `delta`.
    pub fn translate(&self, delta: Point) -> Rect {
        Rect {
            min: self.min + delta,
            max: self.max + delta,
        }
    }

    /// Grows the rectangle outward by `margin` on every side (shrinks for
    /// negative margins; collapses to an empty rectangle rather than
    /// inverting).
    pub fn inflate(&self, margin: Coord) -> Rect {
        let min = self.min - Point::new(margin, margin);
        let max = self.max + Point::new(margin, margin);
        if min.x >= max.x || min.y >= max.y {
            let c = self.center();
            return Rect { min: c, max: c };
        }
        Rect { min, max }
    }

    /// Fraction of `self`'s area covered by `other`, in `[0, 1]`.
    /// Returns 0.0 for an empty `self`.
    pub fn overlap_ratio(&self, other: &Rect) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.overlap_area(other) as f64 / self.area() as f64
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} — {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: Coord, y0: Coord, x1: Coord, y1: Coord) -> Rect {
        Rect::from_extents(x0, y0, x1, y1)
    }

    #[test]
    fn normalizes_corners() {
        let a = Rect::new(Point::new(10, 20), Point::new(0, 5));
        assert_eq!(a.min(), Point::new(0, 5));
        assert_eq!(a.max(), Point::new(10, 20));
    }

    #[test]
    fn area_and_empty() {
        assert_eq!(r(0, 0, 4, 5).area(), 20);
        assert!(r(3, 3, 3, 10).is_empty());
        assert!(!r(0, 0, 1, 1).is_empty());
    }

    #[test]
    fn containment() {
        let big = r(0, 0, 100, 100);
        assert!(big.contains_rect(&r(0, 0, 100, 100)));
        assert!(big.contains_rect(&r(10, 10, 90, 90)));
        assert!(!big.contains_rect(&r(-1, 10, 90, 90)));
        assert!(big.contains_point(Point::new(0, 0)));
        assert!(!big.contains_point(Point::new(100, 100)));
    }

    #[test]
    fn overlap_semantics_closed_open() {
        let a = r(0, 0, 10, 10);
        let b = r(10, 0, 20, 10); // shares an edge only
        assert!(!a.overlaps(&b));
        assert!(a.touches(&b));
        assert_eq!(a.overlap_area(&b), 0);
        let c = r(9, 9, 11, 11);
        assert!(a.overlaps(&c));
        assert_eq!(a.overlap_area(&c), 1);
    }

    #[test]
    fn intersection_and_union() {
        let a = r(0, 0, 10, 10);
        let b = r(5, 5, 15, 15);
        assert_eq!(a.intersection(&b), Some(r(5, 5, 10, 10)));
        assert_eq!(a.union_bbox(&b), r(0, 0, 15, 15));
        assert_eq!(a.intersection(&r(20, 20, 30, 30)), None);
    }

    #[test]
    fn bbox_of_skips_empty() {
        let rects = [r(0, 0, 10, 10), r(5, 5, 5, 20), r(20, -5, 30, 2)];
        assert_eq!(Rect::bbox_of(rects.iter()), Some(r(0, -5, 30, 10)));
        assert_eq!(Rect::bbox_of([].iter()), None);
        assert_eq!(Rect::bbox_of([r(1, 1, 1, 1)].iter()), None);
    }

    #[test]
    fn translate_and_inflate() {
        let a = r(0, 0, 10, 10);
        assert_eq!(a.translate(Point::new(5, -5)), r(5, -5, 15, 5));
        assert_eq!(a.inflate(3), r(-3, -3, 13, 13));
        assert_eq!(a.inflate(-2), r(2, 2, 8, 8));
        // Over-shrinking collapses instead of inverting.
        assert!(a.inflate(-7).is_empty());
    }

    #[test]
    fn centered_square() {
        let sq = Rect::centered_square(Point::new(100, 100), 60);
        assert_eq!(sq, r(70, 70, 130, 130));
    }

    #[test]
    fn overlap_ratio() {
        let a = r(0, 0, 10, 10);
        let b = r(0, 0, 5, 10);
        assert!((a.overlap_ratio(&b) - 0.5).abs() < 1e-12);
        assert_eq!(r(0, 0, 0, 0).overlap_ratio(&a), 0.0);
    }

    #[test]
    fn corners_ccw() {
        let a = r(0, 0, 4, 2);
        assert_eq!(
            a.corners(),
            [
                Point::new(0, 0),
                Point::new(4, 0),
                Point::new(4, 2),
                Point::new(0, 2)
            ]
        );
    }
}
