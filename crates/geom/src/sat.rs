//! Exact integer summed-area tables over rectangle sets.
//!
//! Rectangle coverage over integer coordinates is an exact integer — no
//! floating point is involved until a single division at the very end of
//! rasterisation. [`AreaTable`] compresses the rectangles' x/y boundaries
//! into a coarse grid of "compressed cells" whose corners carry exact `i64`
//! prefix sums of covered area (the build refuses inputs whose total
//! weighted area could overflow them — over a square metre of geometry).
//! After the O(n log n) build, `covered area of an arbitrary query rect` is
//! answered with four corner evaluations, each an O(log n) binary search
//! plus O(1) arithmetic.
//!
//! Rasterising a clip's `n × n` density grid through a shared per-tile table
//! therefore costs O(n² log r) instead of O(clip rects × touched cells) per
//! clip — and because both paths compute the *same* exact integer per cell
//! before one f64 division, the resulting [`DensityGrid`] is bit-identical
//! to [`DensityGrid::from_rects`] on **arbitrary** input.
//!
//! # Multiplicity
//!
//! The reference rasteriser [`DensityGrid::from_rects`] accumulates the
//! per-rect overlap *sum* into each cell — a point covered by two rects
//! counts twice (the clamp to the cell area happens afterwards). Layouts do
//! produce overlapping dissected rects (per-polygon dissections are disjoint
//! only within one polygon), so the table stores a coverage **multiplicity**
//! per compressed cell rather than a boolean: [`AreaTable::covered_area`] is
//! exactly `Σ overlap_area(rect, query)`, and [`AreaTable::rasterize`]
//! applies the reference path's clamp-then-divide per pixel. No disjointness
//! precondition, no fallback on real layouts — the two rasterisation modes
//! agree bit for bit by construction. (Compressed cells are elementary: no
//! rect edge crosses one, so a per-cell count captures overlap exactly.)

use crate::{Coord, DensityGrid, Point, Rect};
use serde::{Deserialize, Serialize};

/// Selects the rasterisation strategy for density-grid construction.
///
/// Both modes produce bit-identical [`DensityGrid`]s on arbitrary input
/// rects (the exactness argument in the module docs), so the toggle is a
/// pure performance/ablation switch — report digests do not depend on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum RasterMode {
    /// Direct per-rect sweep ([`DensityGrid::from_rects`]): exact integer
    /// accumulation per cell, O(rects × touched cells).
    Reference,
    /// Summed-area-table rasterisation ([`AreaTable::rasterize`]): build a
    /// coordinate-compressed prefix table once, then answer each cell in
    /// O(log rects). The default.
    #[default]
    Sat,
}

impl std::str::FromStr for RasterMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "reference" => Ok(RasterMode::Reference),
            "sat" => Ok(RasterMode::Sat),
            other => Err(format!(
                "unknown raster mode '{other}' (expected 'reference' or 'sat')"
            )),
        }
    }
}

impl std::fmt::Display for RasterMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RasterMode::Reference => write!(f, "reference"),
            RasterMode::Sat => write!(f, "sat"),
        }
    }
}

/// An exact integer summed-area table over a set of rectangles.
///
/// ```
/// use hotspot_geom::{AreaTable, Rect};
/// let rects = [
///     Rect::from_extents(0, 0, 10, 10),
///     Rect::from_extents(20, 0, 30, 10),
/// ];
/// let table = AreaTable::build(&rects);
/// // Whole plane: both rects.
/// assert_eq!(table.covered_area(&Rect::from_extents(-100, -100, 100, 100)), 200);
/// // A window straddling half of the first rect.
/// assert_eq!(table.covered_area(&Rect::from_extents(5, 0, 15, 10)), 50);
/// // Far away: nothing.
/// assert_eq!(table.covered_area(&Rect::from_extents(50, 50, 60, 60)), 0);
/// ```
#[derive(Debug, Clone)]
pub struct AreaTable {
    /// Sorted, deduped x boundaries; `cx = xs.len() - 1` compressed columns.
    xs: Vec<Coord>,
    /// Sorted, deduped y boundaries; `cy = ys.len() - 1` compressed rows.
    ys: Vec<Coord>,
    /// Cell coverage multiplicity (how many rects cover the cell),
    /// row-major `[j * cx + i]`.
    mult: Vec<u32>,
    /// Multiplicity-weighted area below-left of `(xs[i], ys[j])`:
    /// `[j * (cx + 1) + i]`. Exact in `i64` by the build-time magnitude
    /// check (`total weighted area ≤ i64::MAX / 8`).
    prefix: Vec<i64>,
    /// Multiplicity-weighted height of column `i` below `ys[j]`, row-major
    /// `[j * cx + i]` so a rasterisation row pass reads it contiguously.
    col_h: Vec<i64>,
    /// Multiplicity-weighted width of row `j` left of `xs[i]`, row-major
    /// `[j * (cx + 1) + i]`.
    row_w: Vec<i64>,
}

impl AreaTable {
    /// Default cap on compressed cells for [`AreaTable::try_build`] callers
    /// that bound memory: ~4.2 M cells keeps the largest table under
    /// ~120 MiB across the four per-cell planes.
    pub const DEFAULT_MAX_CELLS: usize = 1 << 22;

    /// Builds a table from `rects` (overlaps allowed — they accumulate
    /// multiplicity, matching the reference rasteriser). Empty rects are
    /// ignored; an empty input yields a table whose every query returns
    /// zero.
    pub fn build(rects: &[Rect]) -> Self {
        Self::try_build(rects, usize::MAX)
            .expect("table exceeds exact-i64 bounds (cell count or total weighted area)")
    }

    /// Builds a table unless it would exceed `max_cells` compressed cells
    /// (memory/latency cap) or the total multiplicity-weighted rect area
    /// would overflow the exact-`i64` corner arithmetic (`> i64::MAX / 8`
    /// nm² — over a square metre of geometry; unreachable for layouts).
    /// Returns `None` in either case so callers can fall back to the
    /// reference path — safe, because whenever a table *is* built it
    /// produces bit-identical grids.
    pub fn try_build(rects: &[Rect], max_cells: usize) -> Option<Self> {
        let live: Vec<&Rect> = rects.iter().filter(|r| !r.is_empty()).collect();
        if live.is_empty() {
            return Some(AreaTable {
                xs: Vec::new(),
                ys: Vec::new(),
                mult: Vec::new(),
                prefix: Vec::new(),
                col_h: Vec::new(),
                row_w: Vec::new(),
            });
        }
        // Every corner-function term (prefix, fx·col_h, fy·row_w,
        // fx·fy·mult) is a weighted area of a subregion, so each is bounded
        // by the total weighted area, and the query arithmetic's partial
        // sums by small multiples of it. Refusing inputs past
        // `i64::MAX / 8` lets the whole table — storage and queries — run
        // in exact `i64`.
        let total_weighted: i128 = live.iter().map(|r| r.area() as i128).sum();
        if total_weighted > i128::from(i64::MAX) / 8 {
            return None;
        }
        let mut xs: Vec<Coord> = live.iter().flat_map(|r| [r.min().x, r.max().x]).collect();
        let mut ys: Vec<Coord> = live.iter().flat_map(|r| [r.min().y, r.max().y]).collect();
        xs.sort_unstable();
        xs.dedup();
        ys.sort_unstable();
        ys.dedup();
        let cx = xs.len() - 1;
        let cy = ys.len() - 1;
        if cx.checked_mul(cy).is_none_or(|cells| cells > max_cells) {
            return None;
        }

        let mut mult = vec![0u32; cx * cy];
        let mut row_w = vec![0i64; (cx + 1) * cy];
        let mut col_h = vec![0i64; cx * (cy + 1)];
        let mut prefix = vec![0i64; (cx + 1) * (cy + 1)];
        compile_planes(
            live.iter().copied(),
            &xs,
            &ys,
            &mut Vec::new(),
            &mut Vec::new(),
            &mut mult,
            &mut row_w,
            &mut col_h,
            &mut prefix,
        );

        Some(AreaTable {
            xs,
            ys,
            mult,
            prefix,
            col_h,
            row_w,
        })
    }

    /// Whether the table covers no area at all.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Number of compressed cells (memory-cost proxy).
    pub fn cells(&self) -> usize {
        if self.xs.is_empty() {
            0
        } else {
            (self.xs.len() - 1) * (self.ys.len() - 1)
        }
    }

    /// Covered area below-left of the (clamped) point `(x, y)` — the
    /// summed-area corner function `F`. Exact in `i64` by the build-time
    /// magnitude check (each term is a weighted subregion area).
    fn corner(&self, x: Coord, y: Coord) -> i64 {
        let cx = self.xs.len() - 1;
        let cy = self.ys.len() - 1;
        let x = x.clamp(self.xs[0], self.xs[cx]);
        let y = y.clamp(self.ys[0], self.ys[cy]);
        // Last boundary at or below the query point; `fx`/`fy` are the
        // partial-strip extents into cell (i, j).
        let i = self.xs.partition_point(|&v| v <= x) - 1;
        let j = self.ys.partition_point(|&v| v <= y) - 1;
        let fx = x - self.xs[i];
        let fy = y - self.ys[j];
        let mut area = self.prefix[j * (cx + 1) + i];
        if fx > 0 {
            area += fx * self.col_h[j * cx + i];
        }
        if fy > 0 {
            area += fy * self.row_w[j * (cx + 1) + i];
        }
        if fx > 0 && fy > 0 {
            area += fx * fy * self.mult[j * cx + i] as i64;
        }
        area
    }

    /// Exact multiplicity-weighted covered area (in nm², as an integer)
    /// inside `query` — precisely `Σ overlap_area(rect, query)` over the
    /// input rects, the quantity the reference rasteriser accumulates.
    ///
    /// Queries may lie partially or fully outside the table's bounding box;
    /// coverage there is zero.
    pub fn covered_area(&self, query: &Rect) -> i128 {
        if self.xs.is_empty() || query.is_empty() {
            return 0;
        }
        let (x0, y0) = (query.min().x, query.min().y);
        let (x1, y1) = (query.max().x, query.max().y);
        let covered =
            self.corner(x1, y1) - self.corner(x0, y1) - self.corner(x1, y0) + self.corner(x0, y0);
        i128::from(covered)
    }

    /// [`AreaTable::covered_area`] narrowed to `i64`.
    ///
    /// # Panics
    ///
    /// Panics if the covered area exceeds `i64::MAX` nm² (a query window
    /// kilometres across; impossible for real layouts).
    pub fn covered_area_i64(&self, query: &Rect) -> i64 {
        i64::try_from(self.covered_area(query)).expect("covered area exceeds i64")
    }

    /// Rasterises the table into an `nx × ny` [`DensityGrid`] over `window`,
    /// bit-identical to [`DensityGrid::from_rects`] on the same rects
    /// (overlapping or not): each cell's exact integer overlap sum is read
    /// off the table with four corner evaluations, clamped to the cell area
    /// exactly as the reference sweep clamps, then divided once in f64.
    ///
    /// # Panics
    ///
    /// Panics if `nx` or `ny` is zero or the window is empty.
    pub fn rasterize(&self, window: &Rect, nx: usize, ny: usize) -> DensityGrid {
        let mut cells = vec![0.0f64; nx * ny];
        rasterize_view(
            &TableView {
                xs: &self.xs,
                ys: &self.ys,
                mult: &self.mult,
                prefix: &self.prefix,
                col_h: &self.col_h,
                row_w: &self.row_w,
            },
            window,
            nx,
            ny,
            &mut cells,
        );
        DensityGrid::from_cells(nx, ny, cells)
    }
}

/// Compiles one compressed table's planes in a single sweep.
///
/// `rects` must be non-empty rects whose boundaries all appear in
/// `xs`/`ys`. Compressed cells are elementary (no rect edge crosses one),
/// so a per-cell count captures overlap multiplicity exactly; marking is
/// O(1) per rect — four corner deltas into `diff` — and one fused
/// row-major sweep then integrates the deltas into multiplicities while
/// filling all three prefix planes (pre-zeroed, exactly sized): `row_w[j]`
/// is the in-row weighted-width scan, and `col_h[j+1]`/`prefix[j+1]`
/// accumulate from row `j`. Every access is a contiguous row slice and no
/// cell is touched twice.
#[allow(clippy::too_many_arguments)]
fn compile_planes<'a>(
    rects: impl IntoIterator<Item = &'a Rect>,
    xs: &[Coord],
    ys: &[Coord],
    diff: &mut Vec<i32>,
    run: &mut Vec<i32>,
    mult: &mut [u32],
    row_w: &mut [i64],
    col_h: &mut [i64],
    prefix: &mut [i64],
) {
    let cx = xs.len() - 1;
    let cy = ys.len() - 1;
    diff.clear();
    diff.resize(cx * cy, 0);
    for r in rects {
        let i0 = xs.partition_point(|&x| x < r.min().x);
        let i1 = xs.partition_point(|&x| x < r.max().x);
        let j0 = ys.partition_point(|&y| y < r.min().y);
        let j1 = ys.partition_point(|&y| y < r.max().y);
        diff[j0 * cx + i0] += 1;
        if i1 < cx {
            diff[j0 * cx + i1] -= 1;
        }
        if j1 < cy {
            diff[j1 * cx + i0] -= 1;
            if i1 < cx {
                diff[j1 * cx + i1] += 1;
            }
        }
    }
    sweep_planes(xs, ys, diff, run, mult, row_w, col_h, prefix);
}

/// Integrates corner deltas (`diff`, `cx × cy`) into multiplicities and the
/// three prefix planes in one fused row-major sweep: `row_w[j]` is the
/// in-row weighted-width scan, and `col_h[j+1]`/`prefix[j+1]` accumulate
/// from row `j`. Every access is a contiguous row slice and no cell is
/// touched twice. The planes must be exactly sized; every element
/// (including the zero row-0 boundary of `col_h`/`prefix`) is written, so
/// callers may hand over stale storage without pre-zeroing.
#[allow(clippy::too_many_arguments)]
fn sweep_planes(
    xs: &[Coord],
    ys: &[Coord],
    diff: &[i32],
    run: &mut Vec<i32>,
    mult: &mut [u32],
    row_w: &mut [i64],
    col_h: &mut [i64],
    prefix: &mut [i64],
) {
    let cx = xs.len() - 1;
    let cy = ys.len() - 1;
    run.clear();
    run.resize(cx, 0);
    col_h[..cx].fill(0);
    prefix[..cx + 1].fill(0);
    for j in 0..cy {
        let drow = &diff[j * cx..(j + 1) * cx];
        let mrow = &mut mult[j * cx..(j + 1) * cx];
        let rrow = &mut row_w[j * (cx + 1)..(j + 1) * (cx + 1)];
        let row_h = ys[j + 1] - ys[j];
        let (ch_done, ch_next) = col_h.split_at_mut((j + 1) * cx);
        let ch_prev = &ch_done[j * cx..];
        let (p_done, p_next) = prefix.split_at_mut((j + 1) * (cx + 1));
        let p_prev = &p_done[j * (cx + 1)..];
        let mut row_acc = 0i32;
        let mut w_acc = 0i64;
        for i in 0..cx {
            row_acc += drow[i];
            run[i] += row_acc;
            let m = run[i] as u32;
            mrow[i] = m;
            rrow[i] = w_acc;
            p_next[i] = p_prev[i] + w_acc * row_h;
            w_acc += m as i64 * (xs[i + 1] - xs[i]);
            ch_next[i] = ch_prev[i] + m as i64 * row_h;
        }
        rrow[cx] = w_acc;
        p_next[cx] = p_prev[cx] + w_acc * row_h;
    }
}

/// Borrowed view of one compressed table's planes — an [`AreaTable`]'s own
/// vectors, or one subtile's ranges inside an [`AreaTableGrid`]'s shared
/// arenas. All-empty slices denote a zero-coverage table.
struct TableView<'a> {
    xs: &'a [Coord],
    ys: &'a [Coord],
    mult: &'a [u32],
    prefix: &'a [i64],
    col_h: &'a [i64],
    row_w: &'a [i64],
}

/// Fills `out[k] = (b, i, f)` for each pixel boundary `b = min + ⌊k·span/n⌋`:
/// `i` the compressed interval holding the clamped boundary (last index with
/// `axis[i] <= b`), `f` the partial extent `b - axis[i]`. Boundaries ascend,
/// so one remainder carry generates them and one merge walk indexes them.
fn fill_bounds(
    out: &mut [(Coord, usize, Coord)],
    min: Coord,
    span: Coord,
    n: usize,
    axis: &[Coord],
    empty: bool,
) {
    let n = n as Coord;
    let step = span / n;
    let rem = span % n;
    let mut b = min;
    let mut carry: Coord = 0;
    let mut walk = 0usize;
    let hi = axis.len().saturating_sub(1);
    for slot in out.iter_mut() {
        *slot = if empty {
            (b, 0, 0)
        } else {
            let bc = b.clamp(axis[0], axis[hi]);
            while walk < hi && axis[walk + 1] <= bc {
                walk += 1;
            }
            (b, walk, bc - axis[walk])
        };
        b += step;
        carry += rem;
        if carry >= n {
            carry -= n;
            b += 1;
        }
    }
}

/// The rasterisation kernel behind [`AreaTable::rasterize`] and
/// [`AreaTableGrid::rasterize`], writing every element of `cells`
/// (`nx * ny` long; prior contents are ignored).
///
/// # Panics
///
/// Panics if `nx` or `ny` is zero or the window is empty.
fn rasterize_view(t: &TableView<'_>, window: &Rect, nx: usize, ny: usize, cells: &mut [f64]) {
    assert!(nx > 0 && ny > 0, "grid dimensions must be positive");
    assert!(!window.is_empty(), "window must be non-empty");
    debug_assert_eq!(cells.len(), nx * ny);
    // Stack buffers for the common case (clip grids are 8×8; anything
    // up to 32×32 stays off the heap). `STACK + 1` boundary entries.
    const STACK: usize = 32;
    let w = window.width();
    let h = window.height();
    // Pixel boundaries in absolute coordinates: the same exact integer
    // splits `floor(k·w/n)` as `DensityGrid::from_rects` uses in local
    // coordinates, shifted by the window origin. Alongside each
    // boundary, its compressed column/row index and partial-strip
    // extent. Pixel boundaries ascend, so a monotone merge walk finds
    // each index — no per-boundary binary search.
    let mut bx_buf = [(0 as Coord, 0usize, 0 as Coord); STACK + 1];
    let mut bx_vec = Vec::new();
    let bx: &mut [(Coord, usize, Coord)] = if nx < STACK + 1 {
        &mut bx_buf[..nx + 1]
    } else {
        bx_vec.resize(nx + 1, (0, 0, 0));
        &mut bx_vec
    };
    let mut by_buf = [(0 as Coord, 0usize, 0 as Coord); STACK + 1];
    let mut by_vec = Vec::new();
    let by: &mut [(Coord, usize, Coord)] = if ny < STACK + 1 {
        &mut by_buf[..ny + 1]
    } else {
        by_vec.resize(ny + 1, (0, 0, 0));
        &mut by_vec
    };
    // Boundary positions `min + floor(k·w/n)` are generated incrementally
    // (two divisions per axis, then a Bresenham-style remainder carry), and
    // their compressed indices by a monotone merge walk — no per-boundary
    // division or binary search.
    let empty = t.xs.is_empty();
    fill_bounds(bx, window.min().x, w, nx, t.xs, empty);
    fill_bounds(by, window.min().y, h, ny, t.ys, empty);

    if empty {
        cells.fill(0.0);
        return;
    }
    let cx = t.xs.len() - 1;

    // Stream the corner grid two rows at a time: compute corner row
    // `pj`, then emit pixel row `pj - 1` from the previous and current
    // rows — no (nx+1)×(ny+1) corner plane. All arithmetic is exact
    // `i64` by the build-time magnitude check.
    let mut prev_buf = [0i64; STACK + 1];
    let mut cur_buf = [0i64; STACK + 1];
    let mut prev_vec = Vec::new();
    let mut cur_vec = Vec::new();
    let (mut prev, mut cur): (&mut [i64], &mut [i64]) = if nx < STACK + 1 {
        (&mut prev_buf[..nx + 1], &mut cur_buf[..nx + 1])
    } else {
        prev_vec.resize(nx + 1, 0i64);
        cur_vec.resize(nx + 1, 0i64);
        (&mut prev_vec, &mut cur_vec)
    };
    let uniform = w % nx as Coord == 0 && h % ny as Coord == 0;
    for pj in 0..=ny {
        let (_, j, fy) = by[pj];
        // `j == cy` can occur (query at or above the top boundary),
        // but only with `fy == 0`; the partial-row planes have no row
        // there, so they are sliced inside the `fy > 0` arm.
        let prefix_row = &t.prefix[j * (cx + 1)..(j + 1) * (cx + 1)];
        let col_h_row = &t.col_h[j * cx..(j + 1) * cx];
        let (row_w_row, mult_row): (&[i64], &[u32]) = if fy > 0 {
            (
                &t.row_w[j * (cx + 1)..(j + 1) * (cx + 1)],
                &t.mult[j * cx..(j + 1) * cx],
            )
        } else {
            (&[], &[])
        };
        // Bulk corner-row fill with the `fy` test hoisted out of the
        // per-boundary loop.
        if fy > 0 {
            for (slot, &(_, i, fx)) in cur.iter_mut().zip(bx.iter()) {
                let mut area = prefix_row[i] + fy * row_w_row[i];
                if fx > 0 {
                    area += fx * col_h_row[i] + fx * fy * mult_row[i] as i64;
                }
                *slot = area;
            }
        } else {
            for (slot, &(_, i, fx)) in cur.iter_mut().zip(bx.iter()) {
                let mut area = prefix_row[i];
                if fx > 0 {
                    area += fx * col_h_row[i];
                }
                *slot = area;
            }
        }
        if pj > 0 {
            let py = pj - 1;
            let row_h = by[pj].0 - by[py].0;
            let out = &mut cells[py * nx..(py + 1) * nx];
            // Raw per-cell coverage is a non-negative weighted area, so a
            // zero row-strip total means every cell in the row is zero —
            // the whole row of clamps, conversions and divisions drops
            // out. Per cell, `0 / a == +0.0` and `a / a == 1.0` exactly
            // in IEEE-754, so empty and saturated cells skip the division
            // the reference would perform without changing a single bit.
            if cur[nx] - prev[nx] == cur[0] - prev[0] {
                out.fill(0.0);
            } else if uniform {
                // Every cell has the same area (the window divides the
                // grid evenly — the production clip shape always does),
                // so the zero-area guard and per-pixel width lookup drop
                // out.
                let cell_area = (w / nx as Coord) * row_h;
                for px in 0..nx {
                    let covered = cur[px + 1] - prev[px + 1] - cur[px] + prev[px];
                    let covered = covered.clamp(0, cell_area);
                    out[px] = if covered == 0 {
                        0.0
                    } else if covered == cell_area {
                        1.0
                    } else {
                        covered as f64 / cell_area as f64
                    };
                }
            } else {
                for px in 0..nx {
                    let cell_area = (bx[px + 1].0 - bx[px].0) * row_h;
                    if cell_area == 0 {
                        out[px] = 0.0;
                        continue;
                    }
                    let covered = cur[px + 1] - prev[px + 1] - cur[px] + prev[px];
                    let covered = covered.clamp(0, cell_area);
                    out[px] = if covered == 0 {
                        0.0
                    } else if covered == cell_area {
                        1.0
                    } else {
                        covered as f64 / cell_area as f64
                    };
                }
            }
        }
        std::mem::swap(&mut prev, &mut cur);
    }
}

/// A grid of padded per-subtile summed-area tables covering one scan tile.
///
/// One tile-wide table costs O(R²) compressed cells for R tile rects —
/// the coordinate compression crosses *every* x boundary with *every* y
/// boundary, even for geometry at opposite corners of the tile. Splitting
/// the tile's owned region into `stride × stride` subtiles keeps boundary
/// crossings local: with rects spread over k×k subtiles the total cell
/// count (and thus build time) drops ~k²-fold.
///
/// Each subtile's table is built over the rects clipped to its *padded*
/// window — padded by `pad` on the +x/+y sides — so that any query window
/// up to `pad` wide anchored inside the subtile fits entirely within one
/// table. Clipping does not change coverage (or multiplicity) inside the
/// padded window, so [`AreaTableGrid::rasterize`] through the owning
/// subtile stays bit-identical to the reference sweep over the full rect
/// set.
///
/// Subtiles whose clipped rect soup would exceed the per-table cell cap
/// (or the exact-`i64` area bound) have no table; [`AreaTableGrid::rasterize`]
/// returns `None` there and callers fall back to the reference path for
/// those windows.
#[derive(Debug, Clone)]
pub struct AreaTableGrid {
    origin: Point,
    stride: Coord,
    pad: Coord,
    cols: usize,
    rows: usize,
    slots: Vec<SubSlot>,
    // Shared arenas: every subtile table's boundary and plane storage
    // lives in six flat vectors (offsets in `SubSlot::Table`), so building
    // thousands of small subtile tables costs a handful of large
    // allocations rather than six each — per-table allocation is the
    // dominant build cost at production subtile pitches.
    xs: Vec<Coord>,
    ys: Vec<Coord>,
    mult: Vec<u32>,
    prefix: Vec<i64>,
    col_h: Vec<i64>,
    row_w: Vec<i64>,
    // Build-time scratch retained across rebuilds so a scan worker's
    // per-tile table build stops paying allocation and zeroing: arenas and
    // scratch vectors are grown once and overwritten thereafter.
    scratch: BuildScratch,
}

/// Retained scratch for [`AreaTableGrid`] rebuilds. Contents are stale
/// between builds by design; every consumer overwrites (or epoch-guards)
/// what it reads.
#[derive(Debug, Clone, Default)]
struct BuildScratch {
    /// Bucket offsets of the counting sort (`nslots + 1`).
    start: Vec<usize>,
    /// Scatter cursors / bucket end offsets (`nslots`).
    cursor: Vec<usize>,
    /// Clipped rects, bucket-contiguous.
    flat: Vec<Rect>,
    /// Compressed x-index of each clipped rect's min/max edge.
    ex: Vec<u32>,
    /// Compressed y-index of each clipped rect's min/max edge.
    ey: Vec<u32>,
    /// Epoch marks over the dense boundary span (presence test).
    stamp: Vec<u64>,
    /// Dense boundary-offset → compressed-index lookup.
    lut: Vec<u32>,
    /// Monotone epoch for `stamp` (never reset, so stale marks never
    /// collide).
    epoch: u64,
    /// Unique sorted x boundaries of the current bucket.
    xs_tmp: Vec<Coord>,
    /// Unique sorted y boundaries of the current bucket.
    ys_tmp: Vec<Coord>,
    /// Tagged `(value, edge)` pairs for the wide-span sort fallback.
    pairs: Vec<(Coord, u32)>,
    /// Corner-delta plane of the current bucket.
    diff: Vec<i32>,
    /// Running column accumulator of the plane sweep.
    run: Vec<i32>,
}

/// One subtile's entry in an [`AreaTableGrid`].
#[derive(Debug, Clone, Copy)]
enum SubSlot {
    /// No geometry intersects the padded window — rasterises to zeros.
    Empty,
    /// Table refused (cell cap or exact-`i64` area bound); queries here
    /// fall back to the reference sweep.
    Refused,
    /// Offsets of this subtile's boundary/plane ranges in the arenas.
    Table {
        xs_start: usize,
        xs_len: usize,
        ys_start: usize,
        ys_len: usize,
        mult_start: usize,
        prefix_start: usize,
        col_h_start: usize,
        row_w_start: usize,
    },
}

/// An empty grid covering nothing: every query window misses and returns
/// `None` (reference fallback). The useful starting point for
/// [`AreaTableGrid::rebuild_for`]'s allocation-retaining rebuild cycle.
impl Default for AreaTableGrid {
    fn default() -> Self {
        AreaTableGrid {
            origin: Point::ORIGIN,
            stride: 1,
            pad: 0,
            cols: 0,
            rows: 0,
            slots: Vec::new(),
            xs: Vec::new(),
            ys: Vec::new(),
            mult: Vec::new(),
            prefix: Vec::new(),
            col_h: Vec::new(),
            row_w: Vec::new(),
            scratch: BuildScratch::default(),
        }
    }
}

impl AreaTableGrid {
    /// Builds padded subtile tables over `region` from `rects`.
    ///
    /// `region` is the area query anchors live in (a scan tile's owned
    /// region); `stride` the subtile pitch; `pad` the maximum query-window
    /// extent beyond its anchor subtile (a scan's core side). Rects outside
    /// every padded window are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `region` is empty, `stride <= 0`, or `pad < 0`.
    pub fn build(
        region: &Rect,
        stride: Coord,
        pad: Coord,
        rects: &[Rect],
        max_cells_per_table: usize,
    ) -> AreaTableGrid {
        let mut grid = AreaTableGrid::default();
        grid.rebuild_impl(region, stride, pad, rects, max_cells_per_table, None);
        grid
    }

    /// [`AreaTableGrid::build`] restricted to the subtiles that anchor at
    /// least one of `windows` (and fully contain it within their padding):
    /// the caller already knows every query window it will rasterise, so
    /// subtiles nothing anchors in skip table compilation entirely. Their
    /// queries — which the caller said will not happen — simply return
    /// `None` (reference fallback), so the restriction is invisible to
    /// correctness.
    pub fn build_for(
        region: &Rect,
        stride: Coord,
        pad: Coord,
        rects: &[Rect],
        max_cells_per_table: usize,
        windows: &[Rect],
    ) -> AreaTableGrid {
        let mut grid = AreaTableGrid::default();
        grid.rebuild_for(region, stride, pad, rects, max_cells_per_table, windows);
        grid
    }

    /// [`AreaTableGrid::build_for`] into an existing grid, retaining its
    /// arena and scratch allocations: a scan worker rebuilding tables tile
    /// after tile stops paying allocation and zeroing for storage it
    /// already grew. The previous contents are fully replaced.
    ///
    /// # Panics
    ///
    /// Panics if `region` is empty, `stride <= 0`, or `pad < 0`.
    pub fn rebuild_for(
        &mut self,
        region: &Rect,
        stride: Coord,
        pad: Coord,
        rects: &[Rect],
        max_cells_per_table: usize,
        windows: &[Rect],
    ) {
        assert!(!region.is_empty(), "region must be non-empty");
        assert!(stride > 0, "stride must be positive");
        assert!(pad >= 0, "pad must be non-negative");
        let origin = region.min();
        let cols = usize::try_from((region.width() + stride - 1) / stride).expect("cols overflow");
        let rows = usize::try_from((region.height() + stride - 1) / stride).expect("rows overflow");
        let mut wanted = vec![false; cols * rows];
        for w in windows {
            let dx = w.min().x - origin.x;
            let dy = w.min().y - origin.y;
            if dx < 0 || dy < 0 {
                continue;
            }
            let (Ok(c), Ok(q)) = (usize::try_from(dx / stride), usize::try_from(dy / stride))
            else {
                continue;
            };
            if c >= cols || q >= rows {
                continue;
            }
            let win_max_x = origin.x + (c as Coord + 1) * stride + pad;
            let win_max_y = origin.y + (q as Coord + 1) * stride + pad;
            if w.max().x <= win_max_x && w.max().y <= win_max_y {
                wanted[q * cols + c] = true;
            }
        }
        self.rebuild_impl(
            region,
            stride,
            pad,
            rects,
            max_cells_per_table,
            Some(&wanted),
        );
    }

    fn rebuild_impl(
        &mut self,
        region: &Rect,
        stride: Coord,
        pad: Coord,
        rects: &[Rect],
        max_cells_per_table: usize,
        wanted: Option<&[bool]>,
    ) {
        assert!(!region.is_empty(), "region must be non-empty");
        assert!(stride > 0, "stride must be positive");
        assert!(pad >= 0, "pad must be non-negative");
        let origin = region.min();
        let cols = usize::try_from((region.width() + stride - 1) / stride).expect("cols overflow");
        let rows = usize::try_from((region.height() + stride - 1) / stride).expect("rows overflow");
        let nslots = cols * rows;
        self.origin = origin;
        self.stride = stride;
        self.pad = pad;
        self.cols = cols;
        self.rows = rows;
        // Disjoint field borrows: `scratch` on one side, the slot list and
        // arenas on the other.
        let BuildScratch {
            start,
            cursor,
            flat,
            ex,
            ey,
            stamp,
            lut,
            epoch,
            xs_tmp,
            ys_tmp,
            pairs,
            diff,
            run,
        } = &mut self.scratch;

        // Subtile (c, q)'s padded window spans
        // `[origin + c·stride, origin + (c+1)·stride + pad)` per axis;
        // floor-divide a rect's extents to the subtile range it intersects
        // (coordinates may be negative — halo geometry).
        let span = |r: &Rect| -> Option<(usize, usize, usize, usize)> {
            if r.is_empty() {
                return None;
            }
            let c_lo = (r.min().x - origin.x - pad).div_euclid(stride).max(0);
            let c_hi = (r.max().x - origin.x - 1).div_euclid(stride);
            let q_lo = (r.min().y - origin.y - pad).div_euclid(stride).max(0);
            let q_hi = (r.max().y - origin.y - 1).div_euclid(stride);
            if c_hi < 0 || q_hi < 0 || c_lo as usize >= cols || q_lo as usize >= rows {
                return None;
            }
            Some((
                c_lo as usize,
                (c_hi as usize).min(cols - 1),
                q_lo as usize,
                (q_hi as usize).min(rows - 1),
            ))
        };

        // Counting-sort the clipped rects into one flat bucket array: a
        // count pass sizes every bucket, a scatter pass fills them — no
        // per-subtile `Vec` growth.
        start.clear();
        start.resize(nslots + 1, 0);
        for r in rects {
            if let Some((c0, c1, q0, q1)) = span(r) {
                for q in q0..=q1 {
                    for c in c0..=c1 {
                        start[q * cols + c + 1] += 1;
                    }
                }
            }
        }
        for s in 0..nslots {
            start[s + 1] += start[s];
        }
        cursor.clear();
        cursor.extend_from_slice(&start[..nslots]);
        // Stale tails and scatter holes are never read: every bucket read
        // is `flat[start[s]..cursor[s]]`.
        flat.truncate(start[nslots]);
        flat.resize(start[nslots], Rect::default());
        for r in rects {
            if let Some((c0, c1, q0, q1)) = span(r) {
                for q in q0..=q1 {
                    for c in c0..=c1 {
                        let win = Rect::from_extents(
                            origin.x + c as Coord * stride,
                            origin.y + q as Coord * stride,
                            origin.x + (c as Coord + 1) * stride + pad,
                            origin.y + (q as Coord + 1) * stride + pad,
                        );
                        if let Some(clipped) = r.intersection(&win) {
                            let s = q * cols + c;
                            flat[cursor[s]] = clipped;
                            cursor[s] += 1;
                        }
                    }
                }
            }
        }

        self.slots.clear();
        self.xs.clear();
        self.ys.clear();
        // Pass 1: boundary-compress each bucket and lay out every
        // subtile's plane ranges, so the plane arenas can be allocated
        // zeroed at exactly their final size — no growth reallocation and
        // no double zeroing, which dominate an incremental arena build.
        // Per-edge compressed indices (edge `2k`/`2k+1` = bucket rect `k`'s
        // min/max edge), so pass 2 marks corner deltas with zero binary
        // searches. Bucket edge values are clipped into the subtile's padded
        // window, so they fall in a dense span of `stride + pad + 1`
        // offsets: an epoch-stamped dedup plus a direct value→index lookup
        // table indexes every edge in O(1), and only the ~dozens of unique
        // boundaries are ever sorted. (Beyond `FAST_SPAN` the tables would
        // outweigh the sort they replace; fall back to sorting tagged
        // pairs.)
        const FAST_SPAN: i64 = 1 << 16;
        let span_len = stride + pad + 1;
        let fast = span_len <= FAST_SPAN;
        if fast && stamp.len() < span_len as usize {
            stamp.resize(span_len as usize, 0);
            lut.resize(span_len as usize, 0);
        }
        ex.truncate(2 * flat.len());
        ex.resize(2 * flat.len(), 0);
        ey.truncate(2 * flat.len());
        ey.resize(2 * flat.len(), 0);
        let mut mult_total = 0usize;
        let mut prefix_total = 0usize;
        let mut col_h_total = 0usize;
        let mut row_w_total = 0usize;
        for s in 0..nslots {
            // `cursor[s]`, not `start[s + 1]`: a rect counted into a bucket
            // but clipped to nothing would leave a hole at the tail.
            let bucket = &flat[start[s]..cursor[s]];
            if bucket.is_empty() {
                self.slots.push(SubSlot::Empty);
                continue;
            }
            // A subtile no caller-declared window anchors in skips table
            // compilation; `Refused` keeps any unexpected query correct
            // via the reference fallback.
            if wanted.is_some_and(|w| !w[s]) {
                self.slots.push(SubSlot::Refused);
                continue;
            }
            // Same exactness bound as `AreaTable::try_build`, applied to
            // the clipped bucket.
            let total_weighted: i128 = bucket.iter().map(|r| r.area() as i128).sum();
            if total_weighted > i128::from(i64::MAX) / 8 {
                self.slots.push(SubSlot::Refused);
                continue;
            }
            let base = 2 * start[s];
            let c = s % cols;
            let q = s / cols;
            let lo_x = origin.x + c as Coord * stride;
            let lo_y = origin.y + q as Coord * stride;
            if fast {
                *epoch += 1;
                xs_tmp.clear();
                for r in bucket {
                    for v in [r.min().x, r.max().x] {
                        let k = (v - lo_x) as usize;
                        if stamp[k] != *epoch {
                            stamp[k] = *epoch;
                            xs_tmp.push(v);
                        }
                    }
                }
                xs_tmp.sort_unstable();
                for (u, &v) in xs_tmp.iter().enumerate() {
                    lut[(v - lo_x) as usize] = u as u32;
                }
                for (k, r) in bucket.iter().enumerate() {
                    ex[base + 2 * k] = lut[(r.min().x - lo_x) as usize];
                    ex[base + 2 * k + 1] = lut[(r.max().x - lo_x) as usize];
                }
                *epoch += 1;
                ys_tmp.clear();
                for r in bucket {
                    for v in [r.min().y, r.max().y] {
                        let k = (v - lo_y) as usize;
                        if stamp[k] != *epoch {
                            stamp[k] = *epoch;
                            ys_tmp.push(v);
                        }
                    }
                }
                ys_tmp.sort_unstable();
                for (u, &v) in ys_tmp.iter().enumerate() {
                    lut[(v - lo_y) as usize] = u as u32;
                }
                for (k, r) in bucket.iter().enumerate() {
                    ey[base + 2 * k] = lut[(r.min().y - lo_y) as usize];
                    ey[base + 2 * k + 1] = lut[(r.max().y - lo_y) as usize];
                }
            } else {
                pairs.clear();
                for (k, r) in bucket.iter().enumerate() {
                    pairs.push((r.min().x, 2 * k as u32));
                    pairs.push((r.max().x, 2 * k as u32 + 1));
                }
                pairs.sort_unstable();
                xs_tmp.clear();
                for &(v, tag) in pairs.iter() {
                    if xs_tmp.last() != Some(&v) {
                        xs_tmp.push(v);
                    }
                    ex[base + tag as usize] = (xs_tmp.len() - 1) as u32;
                }
                pairs.clear();
                for (k, r) in bucket.iter().enumerate() {
                    pairs.push((r.min().y, 2 * k as u32));
                    pairs.push((r.max().y, 2 * k as u32 + 1));
                }
                pairs.sort_unstable();
                ys_tmp.clear();
                for &(v, tag) in pairs.iter() {
                    if ys_tmp.last() != Some(&v) {
                        ys_tmp.push(v);
                    }
                    ey[base + tag as usize] = (ys_tmp.len() - 1) as u32;
                }
            }
            let cx = xs_tmp.len() - 1;
            let cy = ys_tmp.len() - 1;
            if cx
                .checked_mul(cy)
                .is_none_or(|cells| cells > max_cells_per_table)
            {
                self.slots.push(SubSlot::Refused);
                continue;
            }
            let xs_start = self.xs.len();
            let ys_start = self.ys.len();
            self.xs.extend_from_slice(xs_tmp);
            self.ys.extend_from_slice(ys_tmp);
            self.slots.push(SubSlot::Table {
                xs_start,
                xs_len: xs_tmp.len(),
                ys_start,
                ys_len: ys_tmp.len(),
                mult_start: mult_total,
                prefix_start: prefix_total,
                col_h_start: col_h_total,
                row_w_start: row_w_total,
            });
            mult_total += cx * cy;
            prefix_total += (cx + 1) * (cy + 1);
            col_h_total += cx * (cy + 1);
            row_w_total += (cx + 1) * cy;
        }
        // The sweep writes every arena element of every table range (the
        // ranges exactly partition the arenas), so stale contents from the
        // previous rebuild need no zeroing — only growth beyond the
        // retained capacity pays an actual memset.
        self.mult.truncate(mult_total);
        self.mult.resize(mult_total, 0);
        self.prefix.truncate(prefix_total);
        self.prefix.resize(prefix_total, 0);
        self.col_h.truncate(col_h_total);
        self.col_h.resize(col_h_total, 0);
        self.row_w.truncate(row_w_total);
        self.row_w.resize(row_w_total, 0);

        // Pass 2: fill each subtile's planes in place.
        for s in 0..nslots {
            let SubSlot::Table {
                xs_start,
                xs_len,
                ys_start,
                ys_len,
                mult_start,
                prefix_start,
                col_h_start,
                row_w_start,
            } = self.slots[s]
            else {
                continue;
            };
            let bucket = &flat[start[s]..cursor[s]];
            let cx = xs_len - 1;
            let cy = ys_len - 1;
            let xs = &self.xs[xs_start..xs_start + xs_len];
            let ys = &self.ys[ys_start..ys_start + ys_len];
            diff.clear();
            diff.resize(cx * cy, 0);
            let base = 2 * start[s];
            for k in 0..bucket.len() {
                let i0 = ex[base + 2 * k] as usize;
                let i1 = ex[base + 2 * k + 1] as usize;
                let j0 = ey[base + 2 * k] as usize;
                let j1 = ey[base + 2 * k + 1] as usize;
                diff[j0 * cx + i0] += 1;
                if i1 < cx {
                    diff[j0 * cx + i1] -= 1;
                }
                if j1 < cy {
                    diff[j1 * cx + i0] -= 1;
                    if i1 < cx {
                        diff[j1 * cx + i1] += 1;
                    }
                }
            }
            sweep_planes(
                xs,
                ys,
                diff,
                run,
                &mut self.mult[mult_start..mult_start + cx * cy],
                &mut self.row_w[row_w_start..row_w_start + (cx + 1) * cy],
                &mut self.col_h[col_h_start..col_h_start + cx * (cy + 1)],
                &mut self.prefix[prefix_start..prefix_start + (cx + 1) * (cy + 1)],
            );
        }
    }

    /// The [`TableView`] of the subtile owning `window` (selected by the
    /// window's min corner) — `None` when the window lies outside the
    /// grid, spans past its anchor subtile's padding, or the subtile
    /// refused its table; callers fall back to the reference sweep.
    fn view_for(&self, window: &Rect) -> Option<TableView<'_>> {
        let dx = window.min().x - self.origin.x;
        let dy = window.min().y - self.origin.y;
        if dx < 0 || dy < 0 {
            return None;
        }
        let c = usize::try_from(dx / self.stride).ok()?;
        let q = usize::try_from(dy / self.stride).ok()?;
        if c >= self.cols || q >= self.rows {
            return None;
        }
        let win_max_x = self.origin.x + (c as Coord + 1) * self.stride + self.pad;
        let win_max_y = self.origin.y + (q as Coord + 1) * self.stride + self.pad;
        if window.max().x > win_max_x || window.max().y > win_max_y {
            return None;
        }
        match self.slots[q * self.cols + c] {
            SubSlot::Refused => None,
            SubSlot::Empty => Some(TableView {
                xs: &[],
                ys: &[],
                mult: &[],
                prefix: &[],
                col_h: &[],
                row_w: &[],
            }),
            SubSlot::Table {
                xs_start,
                xs_len,
                ys_start,
                ys_len,
                mult_start,
                prefix_start,
                col_h_start,
                row_w_start,
            } => {
                let cx = xs_len - 1;
                let cy = ys_len - 1;
                Some(TableView {
                    xs: &self.xs[xs_start..xs_start + xs_len],
                    ys: &self.ys[ys_start..ys_start + ys_len],
                    mult: &self.mult[mult_start..mult_start + cx * cy],
                    prefix: &self.prefix[prefix_start..prefix_start + (cx + 1) * (cy + 1)],
                    col_h: &self.col_h[col_h_start..col_h_start + cx * (cy + 1)],
                    row_w: &self.row_w[row_w_start..row_w_start + (cx + 1) * cy],
                })
            }
        }
    }

    /// Rasterises `window` through its owning subtile's table — `None`
    /// when no table covers it (outside the grid, past the anchor
    /// subtile's padding, or a refused subtile), in which case the caller
    /// falls back to the reference sweep. A returned grid is bit-identical
    /// to the reference sweep over the grid's full rect set.
    pub fn rasterize(&self, window: &Rect, nx: usize, ny: usize) -> Option<DensityGrid> {
        let view = self.view_for(window)?;
        let mut cells = vec![0.0f64; nx * ny];
        rasterize_view(&view, window, nx, ny, &mut cells);
        Some(DensityGrid::from_cells(nx, ny, cells))
    }

    /// [`AreaTableGrid::rasterize`] into a reusable scratch grid: reshapes
    /// `out` to `nx × ny` and fills it in place (no per-clip allocation
    /// once the scratch has grown). Returns `false` — leaving `out`
    /// unspecified — when no table covers `window`; the caller falls back
    /// to the reference sweep.
    pub fn rasterize_into(
        &self,
        window: &Rect,
        nx: usize,
        ny: usize,
        out: &mut DensityGrid,
    ) -> bool {
        let Some(view) = self.view_for(window) else {
            return false;
        };
        rasterize_view(&view, window, nx, ny, out.reset_for(nx, ny));
        true
    }

    /// Total compressed cells across all subtile tables (memory/build-cost
    /// proxy).
    pub fn cells(&self) -> usize {
        self.slots
            .iter()
            .map(|s| match s {
                SubSlot::Table { xs_len, ys_len, .. } => (xs_len - 1) * (ys_len - 1),
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_answers_zero() {
        let t = AreaTable::build(&[]);
        assert!(t.is_empty());
        assert_eq!(t.cells(), 0);
        assert_eq!(t.covered_area(&Rect::from_extents(-10, -10, 10, 10)), 0);
    }

    #[test]
    fn empty_query_is_zero() {
        let t = AreaTable::build(&[Rect::from_extents(0, 0, 10, 10)]);
        assert_eq!(t.covered_area(&Rect::from_extents(5, 5, 5, 9)), 0);
    }

    #[test]
    fn single_rect_partial_overlap() {
        let t = AreaTable::build(&[Rect::from_extents(0, 0, 10, 10)]);
        assert_eq!(t.covered_area(&Rect::from_extents(0, 0, 10, 10)), 100);
        assert_eq!(t.covered_area(&Rect::from_extents(5, 5, 20, 20)), 25);
        assert_eq!(t.covered_area(&Rect::from_extents(-5, -5, 5, 5)), 25);
        assert_eq!(t.covered_area(&Rect::from_extents(10, 0, 20, 10)), 0);
    }

    #[test]
    fn query_outside_bbox_is_zero() {
        let t = AreaTable::build(&[Rect::from_extents(0, 0, 10, 10)]);
        assert_eq!(t.covered_area(&Rect::from_extents(100, 100, 200, 200)), 0);
        assert_eq!(
            t.covered_area(&Rect::from_extents(-200, -200, -100, -100)),
            0
        );
    }

    #[test]
    fn disjoint_rects_sum_exactly() {
        let rects = [
            Rect::from_extents(0, 0, 7, 13),
            Rect::from_extents(7, 0, 11, 5),
            Rect::from_extents(20, 20, 31, 29),
        ];
        let t = AreaTable::build(&rects);
        let total: i128 = rects.iter().map(|r| r.area() as i128).sum();
        assert_eq!(t.covered_area(&Rect::from_extents(-50, -50, 50, 50)), total);
        // Arbitrary sub-window agrees with the per-rect overlap sum.
        let q = Rect::from_extents(3, 2, 25, 24);
        let want: i128 = rects.iter().map(|r| r.overlap_area(&q) as i128).sum();
        assert_eq!(t.covered_area(&q), want);
    }

    #[test]
    fn overlapping_rects_accumulate_multiplicity() {
        let r = Rect::from_extents(0, 0, 10, 10);
        let t = AreaTable::build(&[r, r]);
        // Doubly-covered area counts twice — the reference overlap sum.
        let plane = Rect::from_extents(-100, -100, 100, 100);
        assert_eq!(t.covered_area(&plane), 200);
        let partial = [r, Rect::from_extents(5, 5, 20, 20)];
        let t = AreaTable::build(&partial);
        let want: i128 = partial.iter().map(|r| r.area() as i128).sum();
        assert_eq!(t.covered_area(&plane), want);
        let q = Rect::from_extents(3, 3, 8, 8);
        let want: i128 = partial.iter().map(|r| r.overlap_area(&q) as i128).sum();
        assert_eq!(t.covered_area(&q), want);
    }

    #[test]
    fn overlapping_rasterisation_matches_reference_clamp() {
        // Two rects each covering the same half of the window: the overlap
        // sum saturates the clamp exactly as `from_rects` does.
        let window = Rect::from_extents(0, 0, 100, 100);
        let rects = [
            Rect::from_extents(0, 0, 50, 100),
            Rect::from_extents(0, 0, 50, 100),
            Rect::from_extents(25, 25, 75, 75),
        ];
        let t = AreaTable::build(&rects);
        for n in [1usize, 2, 4, 5, 8] {
            let sat = t.rasterize(&window, n, n);
            let naive = DensityGrid::from_rects(&window, &rects, n, n);
            assert_eq!(sat.cells(), naive.cells(), "grid {n}x{n}");
        }
    }

    #[test]
    fn try_build_respects_cell_cap() {
        let rects: Vec<Rect> = (0..10)
            .map(|i| Rect::from_extents(3 * i, 3 * i, 3 * i + 2, 3 * i + 2))
            .collect();
        assert!(AreaTable::try_build(&rects, 3).is_none());
        let t = AreaTable::try_build(&rects, 10_000).expect("under cap");
        assert_eq!(
            t.covered_area(&Rect::from_extents(-100, -100, 100, 100)),
            10 * 4
        );
    }

    #[test]
    fn rasterize_matches_from_rects_bitwise() {
        let window = Rect::from_extents(0, 0, 120, 120);
        let rects = [
            Rect::from_extents(0, 0, 30, 120),
            Rect::from_extents(60, 60, 90, 90),
            Rect::from_extents(95, 5, 118, 41),
        ];
        let t = AreaTable::build(&rects);
        for n in [1usize, 2, 4, 7, 8] {
            let sat = t.rasterize(&window, n, n);
            let local: Vec<Rect> = rects.to_vec();
            let naive = DensityGrid::from_rects(&window, &local, n, n);
            assert_eq!(sat.cells(), naive.cells(), "grid {n}x{n}");
        }
    }

    #[test]
    fn rasterize_window_outside_coverage_is_zero() {
        let t = AreaTable::build(&[Rect::from_extents(0, 0, 10, 10)]);
        let g = t.rasterize(&Rect::from_extents(1000, 1000, 1100, 1100), 4, 4);
        assert!(g.cells().iter().all(|&c| c == 0.0));
    }

    #[test]
    fn grid_rasterize_matches_reference_on_anchored_windows() {
        let region = Rect::from_extents(0, 0, 160, 160);
        let rects = [
            Rect::from_extents(-20, 5, 35, 45),
            Rect::from_extents(30, 30, 90, 60),
            Rect::from_extents(30, 30, 90, 60),
            Rect::from_extents(100, 0, 130, 180),
            Rect::from_extents(5, 120, 200, 150),
        ];
        let windows = [
            Rect::from_extents(0, 0, 40, 40),
            Rect::from_extents(25, 25, 65, 65),
            Rect::from_extents(79, 100, 119, 140),
            Rect::from_extents(120, 120, 160, 160),
        ];
        let grid = AreaTableGrid::build_for(&region, 40, 40, &rects, usize::MAX, &windows);
        for w in &windows {
            let sat = grid
                .rasterize(w, 8, 8)
                .expect("anchored window has a table");
            let naive = DensityGrid::from_rects(w, &rects, 8, 8);
            assert_eq!(sat.cells(), naive.cells(), "window {w:?}");
        }
    }

    #[test]
    fn grid_empty_subtile_rasterises_zeros() {
        let region = Rect::from_extents(0, 0, 160, 160);
        let rects = [Rect::from_extents(0, 0, 10, 10)];
        let windows = [Rect::from_extents(120, 120, 160, 160)];
        let grid = AreaTableGrid::build_for(&region, 40, 40, &rects, usize::MAX, &windows);
        let g = grid
            .rasterize(&windows[0], 4, 4)
            .expect("empty subtile still answers");
        assert!(g.cells().iter().all(|&c| c == 0.0));
    }

    #[test]
    fn grid_refuses_unanchored_and_overhanging_windows() {
        let region = Rect::from_extents(0, 0, 160, 160);
        let rects = [Rect::from_extents(0, 0, 160, 160)];
        let windows = [Rect::from_extents(0, 0, 40, 40)];
        let grid = AreaTableGrid::build_for(&region, 40, 40, &rects, usize::MAX, &windows);
        // Anchored window answers.
        assert!(grid.rasterize(&windows[0], 4, 4).is_some());
        // A window anchored in a subtile the caller never declared.
        assert!(grid
            .rasterize(&Rect::from_extents(90, 90, 130, 130), 4, 4)
            .is_none());
        // A window larger than the padding allows.
        assert!(grid
            .rasterize(&Rect::from_extents(0, 0, 90, 90), 4, 4)
            .is_none());
        // A window anchored outside the region.
        assert!(grid
            .rasterize(&Rect::from_extents(-40, 0, 0, 40), 4, 4)
            .is_none());
    }

    #[test]
    fn grid_rasterize_into_matches_rasterize() {
        let region = Rect::from_extents(0, 0, 160, 160);
        let rects = [
            Rect::from_extents(3, 7, 61, 33),
            Rect::from_extents(50, 20, 95, 95),
        ];
        let windows = [Rect::from_extents(20, 10, 60, 50)];
        let grid = AreaTableGrid::build_for(&region, 40, 40, &rects, usize::MAX, &windows);
        let owned = grid.rasterize(&windows[0], 8, 8).expect("table");
        let mut scratch = DensityGrid::default();
        assert!(grid.rasterize_into(&windows[0], 8, 8, &mut scratch));
        assert_eq!(owned.cells(), scratch.cells());
        // Refused window leaves the scratch untouched and reports false.
        assert!(!grid.rasterize_into(&Rect::from_extents(0, 0, 150, 150), 8, 8, &mut scratch));
        assert_eq!(owned.cells(), scratch.cells());
    }

    #[test]
    fn grid_rebuild_reuses_storage_and_matches_fresh_build() {
        let region_a = Rect::from_extents(0, 0, 160, 160);
        let rects_a = [
            Rect::from_extents(0, 0, 80, 80),
            Rect::from_extents(40, 40, 120, 120),
        ];
        let windows_a = [Rect::from_extents(10, 10, 50, 50)];
        let mut grid =
            AreaTableGrid::build_for(&region_a, 40, 40, &rects_a, usize::MAX, &windows_a);

        // Rebuild in place over a different tile and geometry; results must
        // match a from-scratch build bit for bit (stale retained storage
        // must be invisible).
        let region_b = Rect::from_extents(200, 200, 360, 360);
        let rects_b = [
            Rect::from_extents(205, 210, 280, 260),
            Rect::from_extents(240, 240, 330, 350),
            Rect::from_extents(240, 240, 330, 350),
        ];
        let windows_b = [
            Rect::from_extents(210, 210, 250, 250),
            Rect::from_extents(300, 300, 340, 340),
        ];
        grid.rebuild_for(&region_b, 40, 40, &rects_b, usize::MAX, &windows_b);
        let fresh = AreaTableGrid::build_for(&region_b, 40, 40, &rects_b, usize::MAX, &windows_b);
        for w in &windows_b {
            let a = grid.rasterize(w, 8, 8).expect("rebuilt");
            let b = fresh.rasterize(w, 8, 8).expect("fresh");
            assert_eq!(a.cells(), b.cells(), "window {w:?}");
            let naive = DensityGrid::from_rects(w, &rects_b, 8, 8);
            assert_eq!(a.cells(), naive.cells(), "window {w:?} vs reference");
        }
        // Windows of the old tile are gone.
        assert!(grid.rasterize(&windows_a[0], 8, 8).is_none());
    }

    #[test]
    fn raster_mode_parses_and_displays() {
        assert_eq!("reference".parse::<RasterMode>(), Ok(RasterMode::Reference));
        assert_eq!("sat".parse::<RasterMode>(), Ok(RasterMode::Sat));
        assert!("fast".parse::<RasterMode>().is_err());
        assert_eq!(RasterMode::Reference.to_string(), "reference");
        assert_eq!(RasterMode::Sat.to_string(), "sat");
        assert_eq!(RasterMode::default(), RasterMode::Sat);
    }
}
