//! Boolean operations on rectangle sets: exact union area, coverage tests,
//! and rectangle-set subtraction.
//!
//! Used by redundant clip removal (the Fig. 12(d) discard rule asks whether
//! the *union* of other cores covers a polygon piece) and by the density
//! and scoring machinery. All operations are exact on integer coordinates.

use crate::{Coord, Rect};

/// Exact area of the union of `rects`, in nm².
///
/// Runs a sweep over the distinct x-intervals with an interval merge per
/// band — `O(n² log n)` worst case, which is ample for per-clip sets.
///
/// ```
/// use hotspot_geom::{boolean, Rect};
/// let a = Rect::from_extents(0, 0, 10, 10);
/// let b = Rect::from_extents(5, 0, 15, 10);
/// assert_eq!(boolean::union_area(&[a, b]), 150);
/// ```
pub fn union_area(rects: &[Rect]) -> i64 {
    let mut xs: Vec<Coord> = Vec::with_capacity(rects.len() * 2);
    for r in rects {
        if !r.is_empty() {
            xs.push(r.min().x);
            xs.push(r.max().x);
        }
    }
    xs.sort_unstable();
    xs.dedup();
    let mut total: i64 = 0;
    for band in xs.windows(2) {
        let (x0, x1) = (band[0], band[1]);
        // Merge the y-intervals of rects spanning this x-band.
        let mut ys: Vec<(Coord, Coord)> = rects
            .iter()
            .filter(|r| !r.is_empty() && r.min().x <= x0 && r.max().x >= x1)
            .map(|r| (r.min().y, r.max().y))
            .collect();
        ys.sort_unstable();
        let mut covered: i64 = 0;
        let mut cursor = Coord::MIN;
        for (lo, hi) in ys {
            let lo = lo.max(cursor);
            if hi > lo {
                covered += hi - lo;
                cursor = hi;
            }
        }
        total += covered * (x1 - x0);
    }
    total
}

/// `true` when the union of `cover` fully covers `target`.
///
/// Exact: equivalent to `area(target ∖ ∪cover) == 0`.
pub fn covers(cover: &[Rect], target: &Rect) -> bool {
    if target.is_empty() {
        return true;
    }
    let clipped: Vec<Rect> = cover
        .iter()
        .filter_map(|r| r.intersection(target))
        .collect();
    union_area(&clipped) == target.area()
}

/// The parts of `target` not covered by any rect in `cutters`, as disjoint
/// rectangles.
///
/// ```
/// use hotspot_geom::{boolean, Rect};
/// let target = Rect::from_extents(0, 0, 10, 10);
/// let hole = Rect::from_extents(4, 4, 6, 6);
/// let parts = boolean::subtract(&target, &[hole]);
/// let area: i64 = parts.iter().map(|r| r.area()).sum();
/// assert_eq!(area, 100 - 4);
/// ```
pub fn subtract(target: &Rect, cutters: &[Rect]) -> Vec<Rect> {
    let mut pieces = vec![*target];
    for cutter in cutters {
        let mut next = Vec::with_capacity(pieces.len());
        for piece in pieces {
            subtract_one(&piece, cutter, &mut next);
        }
        pieces = next;
        if pieces.is_empty() {
            break;
        }
    }
    pieces
}

/// Splits `piece ∖ cutter` into at most four rectangles.
fn subtract_one(piece: &Rect, cutter: &Rect, out: &mut Vec<Rect>) {
    let Some(overlap) = piece.intersection(cutter) else {
        if !piece.is_empty() {
            out.push(*piece);
        }
        return;
    };
    // Bottom band.
    if overlap.min().y > piece.min().y {
        out.push(Rect::from_extents(
            piece.min().x,
            piece.min().y,
            piece.max().x,
            overlap.min().y,
        ));
    }
    // Top band.
    if overlap.max().y < piece.max().y {
        out.push(Rect::from_extents(
            piece.min().x,
            overlap.max().y,
            piece.max().x,
            piece.max().y,
        ));
    }
    // Left band (within the overlap's y-range).
    if overlap.min().x > piece.min().x {
        out.push(Rect::from_extents(
            piece.min().x,
            overlap.min().y,
            overlap.min().x,
            overlap.max().y,
        ));
    }
    // Right band.
    if overlap.max().x < piece.max().x {
        out.push(Rect::from_extents(
            overlap.max().x,
            overlap.min().y,
            piece.max().x,
            overlap.max().y,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: Coord, y0: Coord, x1: Coord, y1: Coord) -> Rect {
        Rect::from_extents(x0, y0, x1, y1)
    }

    #[test]
    fn union_of_disjoint_adds() {
        assert_eq!(union_area(&[r(0, 0, 10, 10), r(20, 0, 30, 10)]), 200);
    }

    #[test]
    fn union_of_overlapping_deduplicates() {
        assert_eq!(union_area(&[r(0, 0, 10, 10), r(5, 0, 15, 10)]), 150);
        // Identical copies count once.
        assert_eq!(union_area(&[r(0, 0, 10, 10); 5]), 100);
    }

    #[test]
    fn union_handles_contained_rects() {
        assert_eq!(union_area(&[r(0, 0, 100, 100), r(10, 10, 20, 20)]), 10_000);
    }

    #[test]
    fn union_of_cross_shape() {
        // Plus sign: 30×10 and 10×30 crossing at the centre.
        let area = union_area(&[r(0, 10, 30, 20), r(10, 0, 20, 30)]);
        assert_eq!(area, 300 + 300 - 100);
    }

    #[test]
    fn union_ignores_empty() {
        assert_eq!(union_area(&[r(5, 5, 5, 10)]), 0);
        assert_eq!(union_area(&[]), 0);
    }

    #[test]
    fn covers_exact_and_partial() {
        let target = r(0, 0, 10, 10);
        assert!(covers(&[r(0, 0, 10, 10)], &target));
        // Two halves cover exactly.
        assert!(covers(&[r(0, 0, 5, 10), r(5, 0, 10, 10)], &target));
        // A 1 nm sliver missing.
        assert!(!covers(&[r(0, 0, 5, 10), r(5, 0, 10, 9)], &target));
        // Overlapping pieces still cover.
        assert!(covers(&[r(0, 0, 7, 10), r(3, 0, 10, 10)], &target));
        // Empty target is vacuously covered.
        assert!(covers(&[], &r(3, 3, 3, 9)));
    }

    #[test]
    fn subtract_hole_produces_frame() {
        let parts = subtract(&r(0, 0, 10, 10), &[r(4, 4, 6, 6)]);
        let area: i64 = parts.iter().map(Rect::area).sum();
        assert_eq!(area, 96);
        // Pieces are pairwise disjoint.
        for i in 0..parts.len() {
            for j in (i + 1)..parts.len() {
                assert!(!parts[i].overlaps(&parts[j]));
            }
        }
        // And none covers the hole.
        for p in &parts {
            assert!(!p.overlaps(&r(4, 4, 6, 6)));
        }
    }

    #[test]
    fn subtract_disjoint_is_identity() {
        let parts = subtract(&r(0, 0, 10, 10), &[r(20, 20, 30, 30)]);
        assert_eq!(parts, vec![r(0, 0, 10, 10)]);
    }

    #[test]
    fn subtract_full_cover_is_empty() {
        assert!(subtract(&r(0, 0, 10, 10), &[r(-5, -5, 15, 15)]).is_empty());
    }

    #[test]
    fn subtract_multiple_cutters() {
        let parts = subtract(&r(0, 0, 10, 10), &[r(0, 0, 5, 10), r(5, 0, 10, 5)]);
        let area: i64 = parts.iter().map(Rect::area).sum();
        assert_eq!(area, 25);
        assert_eq!(parts, vec![r(5, 5, 10, 10)]);
    }

    #[test]
    fn union_area_equals_target_minus_subtract() {
        // Cross-check the two primitives against each other.
        let target = r(0, 0, 50, 50);
        let cutters = [r(0, 0, 20, 20), r(10, 10, 40, 30), r(30, 25, 50, 50)];
        let clipped: Vec<Rect> = cutters
            .iter()
            .filter_map(|c| c.intersection(&target))
            .collect();
        let remaining: i64 = subtract(&target, &cutters).iter().map(Rect::area).sum();
        assert_eq!(union_area(&clipped), target.area() - remaining);
    }
}
