//! Integer-nanometre rectilinear geometry substrate for lithography hotspot
//! detection.
//!
//! This crate provides the low-level geometric machinery that the rest of the
//! hotspot-detection workspace is built on:
//!
//! - [`Point`] and [`Rect`] in integer nanometres ([`Coord`]),
//! - rectilinear [`Polygon`]s with horizontal dissection into rectangles
//!   (the polygon dissection of Fig. 11(a) in the paper),
//! - the [`Orientation`] group `D8` (four rotations × two mirrors) used by
//!   topological classification and the density distance of eq. (1),
//! - pixelated [`DensityGrid`]s with the orientation-minimised L1 distance,
//! - exact integer summed-area tables ([`AreaTable`]) over rect soups,
//!   the shared-per-tile fast path for density rasterisation ([`RasterMode`]),
//! - corner/touch analysis used by the nontopological features (Fig. 7(e)),
//! - a uniform-grid [`GridIndex`] for sublinear window queries, shared by
//!   clip extraction and the tiled layout scanner.
//!
//! All coordinates are integers (nanometres). Geometry is closed-open:
//! a rectangle spans `[min.x, max.x) × [min.y, max.y)`, so two rectangles
//! that merely share an edge do not overlap but do *touch*.
//!
//! # Examples
//!
//! ```
//! use hotspot_geom::{Point, Rect};
//!
//! let a = Rect::new(Point::new(0, 0), Point::new(100, 50));
//! let b = Rect::new(Point::new(50, 0), Point::new(150, 50));
//! assert_eq!(a.intersection(&b), Some(Rect::new(Point::new(50, 0), Point::new(100, 50))));
//! assert_eq!(a.overlap_area(&b), 50 * 50);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod boolean;
mod corner;
mod density;
mod index;
mod orientation;
mod point;
mod polygon;
mod rect;
pub mod sat;

pub use corner::{corner_count, touch_point_count, CornerKind, CornerSummary};
pub use density::{DensityDistance, DensityGrid};
pub use index::GridIndex;
pub use orientation::{Orientation, D8};
pub use point::{Coord, Point};
pub use polygon::{dissect_rects, DissectError, Polygon};
pub use rect::Rect;
pub use sat::{AreaTable, AreaTableGrid, RasterMode};

/// Minimum horizontal or vertical distance between the edges of two
/// disjoint rectangles, `None` if they overlap or touch in both axes.
///
/// This is the edge-to-edge spacing used by the "external facing edge pair"
/// nontopological feature. Diagonal separation is measured as the Chebyshev
/// distance of the gap.
///
/// ```
/// use hotspot_geom::{edge_spacing, Point, Rect};
/// let a = Rect::new(Point::new(0, 0), Point::new(10, 10));
/// let b = Rect::new(Point::new(25, 0), Point::new(35, 10));
/// assert_eq!(edge_spacing(&a, &b), Some(15));
/// ```
pub fn edge_spacing(a: &Rect, b: &Rect) -> Option<Coord> {
    if a.overlaps(b) {
        return None;
    }
    let dx = gap_1d(a.min().x, a.max().x, b.min().x, b.max().x);
    let dy = gap_1d(a.min().y, a.max().y, b.min().y, b.max().y);
    match (dx, dy) {
        (Some(dx), Some(dy)) => Some(dx.max(dy)),
        (Some(dx), None) => Some(dx),
        (None, Some(dy)) => Some(dy),
        (None, None) => None,
    }
}

/// Gap between intervals `[a0,a1)` and `[b0,b1)`; `None` if they overlap.
fn gap_1d(a0: Coord, a1: Coord, b0: Coord, b1: Coord) -> Option<Coord> {
    if a1 <= b0 {
        Some(b0 - a1)
    } else if b1 <= a0 {
        Some(a0 - b1)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_spacing_horizontal() {
        let a = Rect::new(Point::new(0, 0), Point::new(10, 10));
        let b = Rect::new(Point::new(30, 2), Point::new(40, 8));
        assert_eq!(edge_spacing(&a, &b), Some(20));
    }

    #[test]
    fn edge_spacing_vertical() {
        let a = Rect::new(Point::new(0, 0), Point::new(10, 10));
        let b = Rect::new(Point::new(0, 17), Point::new(10, 20));
        assert_eq!(edge_spacing(&a, &b), Some(7));
    }

    #[test]
    fn edge_spacing_diagonal_is_chebyshev() {
        let a = Rect::new(Point::new(0, 0), Point::new(10, 10));
        let b = Rect::new(Point::new(13, 14), Point::new(20, 20));
        assert_eq!(edge_spacing(&a, &b), Some(4));
    }

    #[test]
    fn edge_spacing_overlapping_is_none() {
        let a = Rect::new(Point::new(0, 0), Point::new(10, 10));
        let b = Rect::new(Point::new(5, 5), Point::new(15, 15));
        assert_eq!(edge_spacing(&a, &b), None);
    }

    #[test]
    fn edge_spacing_touching_is_zero() {
        let a = Rect::new(Point::new(0, 0), Point::new(10, 10));
        let b = Rect::new(Point::new(10, 0), Point::new(20, 10));
        assert_eq!(edge_spacing(&a, &b), Some(0));
    }
}
