//! Rectilinear polygons and their dissection into rectangles.
//!
//! The evaluation phase of the paper first horizontally slices every layout
//! polygon into rectangles (Fig. 11(a)); those rectangles seed layout-clip
//! extraction. [`Polygon::dissect_horizontal`] implements that slicing for
//! arbitrary (possibly non-convex, possibly with collinear runs) rectilinear
//! polygons.

use crate::{Coord, Point, Rect};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A simple rectilinear (Manhattan) polygon.
///
/// Vertices are stored in order (either orientation); every edge must be
/// axis-parallel and the boundary must be closed and non-self-intersecting.
/// Validation happens in [`Polygon::new`].
///
/// ```
/// use hotspot_geom::{Point, Polygon, Rect};
/// // An L-shape.
/// let poly = Polygon::new(vec![
///     Point::new(0, 0), Point::new(20, 0), Point::new(20, 10),
///     Point::new(10, 10), Point::new(10, 30), Point::new(0, 30),
/// ])?;
/// assert_eq!(poly.area(), 20 * 10 + 10 * 20);
/// assert_eq!(poly.dissect_horizontal().len(), 2);
/// # Ok::<(), hotspot_geom::DissectError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Polygon {
    vertices: Vec<Point>,
}

/// Error building or dissecting a rectilinear polygon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DissectError {
    /// Fewer than four vertices were supplied.
    TooFewVertices(usize),
    /// Two consecutive vertices are not axis-aligned (or are identical).
    NonRectilinearEdge(Point, Point),
    /// The number of vertices is odd, which cannot close a rectilinear loop.
    OddVertexCount(usize),
}

impl fmt::Display for DissectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DissectError::TooFewVertices(n) => {
                write!(f, "rectilinear polygon needs at least 4 vertices, got {n}")
            }
            DissectError::NonRectilinearEdge(a, b) => {
                write!(f, "edge {a} -> {b} is not axis-parallel")
            }
            DissectError::OddVertexCount(n) => {
                write!(
                    f,
                    "rectilinear polygon cannot have an odd vertex count ({n})"
                )
            }
        }
    }
}

impl std::error::Error for DissectError {}

impl Polygon {
    /// Builds a polygon from a closed vertex loop (the closing edge from the
    /// last back to the first vertex is implicit). Consecutive duplicate
    /// vertices and collinear runs are tolerated and normalised away.
    ///
    /// # Errors
    ///
    /// Returns [`DissectError`] when the loop has fewer than four distinct
    /// vertices, an odd vertex count after normalisation, or any edge that is
    /// not axis-parallel.
    pub fn new(vertices: Vec<Point>) -> Result<Self, DissectError> {
        let normalized = normalize_loop(vertices);
        if normalized.len() < 4 {
            return Err(DissectError::TooFewVertices(normalized.len()));
        }
        if !normalized.len().is_multiple_of(2) {
            return Err(DissectError::OddVertexCount(normalized.len()));
        }
        let n = normalized.len();
        for i in 0..n {
            let a = normalized[i];
            let b = normalized[(i + 1) % n];
            if (a.x != b.x && a.y != b.y) || a == b {
                return Err(DissectError::NonRectilinearEdge(a, b));
            }
        }
        Ok(Polygon {
            vertices: normalized,
        })
    }

    /// The polygon's vertices after normalisation.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Axis-aligned bounding box.
    pub fn bbox(&self) -> Rect {
        let mut min = self.vertices[0];
        let mut max = self.vertices[0];
        for &v in &self.vertices[1..] {
            min = min.min_components(v);
            max = max.max_components(v);
        }
        Rect::new(min, max)
    }

    /// Area in nm² (always positive).
    pub fn area(&self) -> i64 {
        // Shoelace formula; rectilinear polygons keep it exact in integers.
        let n = self.vertices.len();
        let mut twice: i128 = 0;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            twice += a.x as i128 * b.y as i128 - b.x as i128 * a.y as i128;
        }
        (twice.abs() / 2) as i64
    }

    /// Translates every vertex by `delta`.
    pub fn translate(&self, delta: Point) -> Polygon {
        Polygon {
            vertices: self.vertices.iter().map(|&v| v + delta).collect(),
        }
    }

    /// `true` if `p` lies inside the polygon (closed-open semantics,
    /// consistent with [`Rect::contains_point`]): a point on the left or
    /// bottom boundary is inside, on the right or top boundary outside.
    ///
    /// ```
    /// use hotspot_geom::{Point, Polygon, Rect};
    /// let p = Polygon::from(Rect::from_extents(0, 0, 10, 10));
    /// assert!(p.contains_point(Point::new(0, 0)));
    /// assert!(!p.contains_point(Point::new(10, 10)));
    /// ```
    pub fn contains_point(&self, p: Point) -> bool {
        // Rectilinear polygons dissect exactly; containment reduces to the
        // per-rectangle closed-open test.
        self.dissect_horizontal()
            .iter()
            .any(|r| r.contains_point(p))
    }

    /// Dissects the polygon into non-overlapping rectangles by horizontal
    /// slicing (Fig. 11(a)): the polygon is cut at every distinct
    /// horizontal-edge y-coordinate and each band contributes its covered
    /// x-intervals.
    ///
    /// The union of the returned rectangles equals the polygon region, and
    /// their total area equals [`Polygon::area`].
    pub fn dissect_horizontal(&self) -> Vec<Rect> {
        // Vertical edges as (x, y_lo, y_hi).
        let n = self.vertices.len();
        let mut vedges: Vec<(Coord, Coord, Coord)> = Vec::new();
        let mut ys: Vec<Coord> = Vec::new();
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            if a.x == b.x {
                vedges.push((a.x, a.y.min(b.y), a.y.max(b.y)));
            } else {
                ys.push(a.y);
            }
        }
        ys.sort_unstable();
        ys.dedup();

        let mut out = Vec::new();
        for w in ys.windows(2) {
            let (y0, y1) = (w[0], w[1]);
            // Vertical edges spanning this band, sorted by x; parity fill.
            let mut xs: Vec<Coord> = vedges
                .iter()
                .filter(|&&(_, lo, hi)| lo <= y0 && hi >= y1)
                .map(|&(x, _, _)| x)
                .collect();
            xs.sort_unstable();
            debug_assert!(xs.len().is_multiple_of(2), "odd crossing count in band");
            for pair in xs.chunks_exact(2) {
                if pair[0] < pair[1] {
                    out.push(Rect::from_extents(pair[0], y0, pair[1], y1));
                }
            }
        }
        merge_vertical_runs(out)
    }
}

impl From<Rect> for Polygon {
    fn from(r: Rect) -> Polygon {
        Polygon {
            vertices: r.corners().to_vec(),
        }
    }
}

impl fmt::Display for Polygon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Polygon[")?;
        for (i, v) in self.vertices.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// Dissects every polygon and concatenates the resulting rectangles.
///
/// Convenience wrapper used by clip extraction over a full layout layer.
pub fn dissect_rects<'a, I: IntoIterator<Item = &'a Polygon>>(polygons: I) -> Vec<Rect> {
    let mut out = Vec::new();
    for p in polygons {
        out.extend(p.dissect_horizontal());
    }
    out
}

/// Removes consecutive duplicates and collinear midpoints from a vertex loop.
fn normalize_loop(mut vs: Vec<Point>) -> Vec<Point> {
    vs.dedup();
    if vs.len() > 1 && vs.first() == vs.last() {
        vs.pop();
    }
    // Drop collinear midpoints (runs of 3+ points on one axis line).
    loop {
        let n = vs.len();
        if n < 3 {
            return vs;
        }
        let mut removed = false;
        let mut keep = Vec::with_capacity(n);
        for i in 0..n {
            let prev = vs[(i + n - 1) % n];
            let cur = vs[i];
            let next = vs[(i + 1) % n];
            let collinear =
                (prev.x == cur.x && cur.x == next.x) || (prev.y == cur.y && cur.y == next.y);
            if collinear {
                removed = true;
            } else {
                keep.push(cur);
            }
        }
        vs = keep;
        if !removed {
            return vs;
        }
    }
}

/// Merges vertically adjacent band rectangles that share an x-range, so the
/// dissection of a plain rectangle is a single rectangle.
fn merge_vertical_runs(mut rects: Vec<Rect>) -> Vec<Rect> {
    rects.sort_by_key(|r| (r.min().x, r.max().x, r.min().y));
    let mut out: Vec<Rect> = Vec::with_capacity(rects.len());
    for r in rects {
        if let Some(last) = out.last_mut() {
            if last.min().x == r.min().x && last.max().x == r.max().x && last.max().y == r.min().y {
                *last = Rect::new(last.min(), r.max());
                continue;
            }
        }
        out.push(r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: Coord, y: Coord) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn rejects_bad_loops() {
        assert!(matches!(
            Polygon::new(vec![pt(0, 0), pt(1, 0), pt(1, 1)]),
            Err(DissectError::TooFewVertices(_))
        ));
        assert!(matches!(
            Polygon::new(vec![pt(0, 0), pt(5, 5), pt(5, 0), pt(0, 5)]),
            Err(DissectError::NonRectilinearEdge(..))
        ));
    }

    #[test]
    fn rect_roundtrip() {
        let r = Rect::from_extents(2, 3, 12, 9);
        let p = Polygon::from(r);
        assert_eq!(p.area(), r.area());
        assert_eq!(p.bbox(), r);
        let d = p.dissect_horizontal();
        assert_eq!(d, vec![r]);
    }

    #[test]
    fn l_shape_dissection() {
        // ┌──┐
        // │  │
        // │  └────┐
        // └───────┘
        let p = Polygon::new(vec![
            pt(0, 0),
            pt(30, 0),
            pt(30, 10),
            pt(10, 10),
            pt(10, 30),
            pt(0, 30),
        ])
        .unwrap();
        assert_eq!(p.area(), 30 * 10 + 10 * 20);
        let d = p.dissect_horizontal();
        let total: i64 = d.iter().map(|r| r.area()).sum();
        assert_eq!(total, p.area());
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn u_shape_dissection() {
        // Two towers connected at the bottom.
        let p = Polygon::new(vec![
            pt(0, 0),
            pt(50, 0),
            pt(50, 30),
            pt(40, 30),
            pt(40, 10),
            pt(10, 10),
            pt(10, 30),
            pt(0, 30),
        ])
        .unwrap();
        let d = p.dissect_horizontal();
        let total: i64 = d.iter().map(|r| r.area()).sum();
        assert_eq!(total, p.area());
        // Bottom bar + two towers.
        assert_eq!(d.len(), 3);
        // No two output rectangles overlap.
        for i in 0..d.len() {
            for j in (i + 1)..d.len() {
                assert!(!d[i].overlaps(&d[j]), "{:?} overlaps {:?}", d[i], d[j]);
            }
        }
    }

    #[test]
    fn collinear_and_duplicate_vertices_normalized() {
        let p = Polygon::new(vec![
            pt(0, 0),
            pt(5, 0),
            pt(10, 0), // collinear midpoint at (5, 0)
            pt(10, 10),
            pt(10, 10), // duplicate
            pt(0, 10),
            pt(0, 0), // explicit closure
        ])
        .unwrap();
        assert_eq!(p.vertices().len(), 4);
        assert_eq!(p.area(), 100);
    }

    #[test]
    fn contains_point_on_l_shape() {
        let p = Polygon::new(vec![
            pt(0, 0),
            pt(30, 0),
            pt(30, 10),
            pt(10, 10),
            pt(10, 30),
            pt(0, 30),
        ])
        .unwrap();
        assert!(p.contains_point(pt(5, 5)), "inside the base");
        assert!(p.contains_point(pt(5, 25)), "inside the tower");
        assert!(!p.contains_point(pt(20, 20)), "in the notch");
        assert!(p.contains_point(pt(0, 0)), "closed bottom-left");
        assert!(!p.contains_point(pt(30, 10)), "open top-right of base");
    }

    #[test]
    fn translate_moves_bbox() {
        let p = Polygon::from(Rect::from_extents(0, 0, 10, 10)).translate(pt(100, -50));
        assert_eq!(p.bbox(), Rect::from_extents(100, -50, 110, -40));
    }

    #[test]
    fn dissect_rects_concatenates() {
        let a = Polygon::from(Rect::from_extents(0, 0, 10, 10));
        let b = Polygon::from(Rect::from_extents(20, 0, 30, 10));
        let rs = dissect_rects([&a, &b]);
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn display_formats() {
        let p = Polygon::from(Rect::from_extents(0, 0, 1, 1));
        assert!(p.to_string().starts_with("Polygon["));
    }
}
