//! The orientation group `D8`: four rotations × two mirrors.
//!
//! The paper considers "eight possible orientations … combinations of four
//! rotations (0°, 90°, 180°, 270°) and two mirrors" in both the Theorem-1
//! topology match and the density distance of eq. (1). Orientations act on
//! geometry *within a window* `[0, w) × [0, h)` so that transformed
//! coordinates stay non-negative, matching how clip patterns are stored.

use crate::{Coord, Point, Rect};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An element of the dihedral group `D8` acting on a `w × h` window.
///
/// `Rk` is a counterclockwise rotation by `k` degrees; `Mx*` first mirrors
/// horizontally (x ↦ w−x) and then rotates.
///
/// ```
/// use hotspot_geom::{Orientation, Point, Rect};
/// let r = Rect::from_extents(0, 0, 10, 20);
/// let (rot, dims) = (Orientation::R90.apply_rect(&r, 100, 50), Orientation::R90.window(100, 50));
/// assert_eq!(dims, (50, 100));
/// assert_eq!(rot, Rect::from_extents(30, 0, 50, 10));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Orientation {
    /// Identity.
    #[default]
    R0,
    /// 90° counterclockwise rotation.
    R90,
    /// 180° rotation.
    R180,
    /// 270° counterclockwise rotation.
    R270,
    /// Horizontal mirror (x ↦ w − x).
    Mx,
    /// Horizontal mirror followed by 90° ccw rotation.
    MxR90,
    /// Horizontal mirror followed by 180° rotation (= vertical mirror).
    MxR180,
    /// Horizontal mirror followed by 270° ccw rotation.
    MxR270,
}

/// All eight orientations, identity first.
pub const D8: [Orientation; 8] = [
    Orientation::R0,
    Orientation::R90,
    Orientation::R180,
    Orientation::R270,
    Orientation::Mx,
    Orientation::MxR90,
    Orientation::MxR180,
    Orientation::MxR270,
];

impl Orientation {
    /// `true` for the four mirrored elements.
    pub fn is_mirrored(self) -> bool {
        matches!(
            self,
            Orientation::Mx | Orientation::MxR90 | Orientation::MxR180 | Orientation::MxR270
        )
    }

    /// Number of 90° ccw rotation steps applied after the optional mirror.
    pub fn rotation_steps(self) -> u8 {
        match self {
            Orientation::R0 | Orientation::Mx => 0,
            Orientation::R90 | Orientation::MxR90 => 1,
            Orientation::R180 | Orientation::MxR180 => 2,
            Orientation::R270 | Orientation::MxR270 => 3,
        }
    }

    /// Builds the orientation from a mirror flag and rotation step count.
    pub fn from_parts(mirrored: bool, steps: u8) -> Orientation {
        match (mirrored, steps % 4) {
            (false, 0) => Orientation::R0,
            (false, 1) => Orientation::R90,
            (false, 2) => Orientation::R180,
            (false, 3) => Orientation::R270,
            (true, 0) => Orientation::Mx,
            (true, 1) => Orientation::MxR90,
            (true, 2) => Orientation::MxR180,
            (true, 3) => Orientation::MxR270,
            _ => unreachable!(),
        }
    }

    /// Dimensions of the window after the transform.
    pub fn window(self, w: Coord, h: Coord) -> (Coord, Coord) {
        if self.rotation_steps() % 2 == 1 {
            (h, w)
        } else {
            (w, h)
        }
    }

    /// Transforms a point inside a `w × h` window.
    ///
    /// The result lies in the transformed window ([`Orientation::window`]).
    /// Note that for closed-open rectangles, corners must be transformed via
    /// [`Orientation::apply_rect`], not point by point.
    pub fn apply_point(self, p: Point, w: Coord, h: Coord) -> Point {
        let (mut x, mut y) = (p.x, p.y);
        if self.is_mirrored() {
            x = w - x;
        }
        let (mut cw, mut ch) = (w, h);
        for _ in 0..self.rotation_steps() {
            // 90° ccw within a cw × ch window: (x, y) -> (ch - y, x).
            let nx = ch - y;
            let ny = x;
            x = nx;
            y = ny;
            std::mem::swap(&mut cw, &mut ch);
        }
        let _ = cw;
        Point::new(x, y)
    }

    /// Transforms a rectangle inside a `w × h` window (corners transformed
    /// and re-normalised, so closed-open extents remain valid).
    pub fn apply_rect(self, r: &Rect, w: Coord, h: Coord) -> Rect {
        let a = self.apply_point(r.min(), w, h);
        let b = self.apply_point(r.max(), w, h);
        Rect::new(a, b)
    }

    /// Transforms every rectangle in a slice.
    pub fn apply_rects(self, rects: &[Rect], w: Coord, h: Coord) -> Vec<Rect> {
        rects.iter().map(|r| self.apply_rect(r, w, h)).collect()
    }

    /// Group composition: `self.then(other)` applies `self` first.
    pub fn then(self, other: Orientation) -> Orientation {
        // In D4 presentation with r = ccw rotation, m = horizontal mirror:
        // m r^k  composition rules: r^a r^b = r^(a+b); (m r^a)(r^b) = m r^(a+b);
        // r^a (m r^b) = m r^(b - a); (m r^a)(m r^b) = r^(b - a).
        let (am, ak) = (self.is_mirrored(), self.rotation_steps() as i8);
        let (bm, bk) = (other.is_mirrored(), other.rotation_steps() as i8);
        let (m, k) = match (am, bm) {
            (false, false) => (false, ak + bk),
            (true, false) => (true, ak + bk),
            (false, true) => (true, bk - ak),
            (true, true) => (false, bk - ak),
        };
        Orientation::from_parts(m, k.rem_euclid(4) as u8)
    }

    /// The inverse element.
    pub fn inverse(self) -> Orientation {
        if self.is_mirrored() {
            self // every mirrored element of D8 is an involution
        } else {
            Orientation::from_parts(false, (4 - self.rotation_steps()) % 4)
        }
    }
}

impl fmt::Display for Orientation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Orientation::R0 => "R0",
            Orientation::R90 => "R90",
            Orientation::R180 => "R180",
            Orientation::R270 => "R270",
            Orientation::Mx => "MX",
            Orientation::MxR90 => "MX90",
            Orientation::MxR180 => "MX180",
            Orientation::MxR270 => "MX270",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: Coord = 100;
    const H: Coord = 60;

    #[test]
    fn identity_is_noop() {
        let r = Rect::from_extents(5, 10, 30, 50);
        assert_eq!(Orientation::R0.apply_rect(&r, W, H), r);
    }

    #[test]
    fn r90_maps_bottom_right_to_top_right() {
        // A marker near the bottom-right corner.
        let r = Rect::from_extents(90, 0, 100, 10);
        let t = Orientation::R90.apply_rect(&r, W, H);
        // New window is 60 × 100; marker should be near the top-right.
        assert_eq!(t, Rect::from_extents(50, 90, 60, 100));
    }

    #[test]
    fn r180_is_r90_twice() {
        let r = Rect::from_extents(5, 10, 30, 50);
        let once = Orientation::R90.apply_rect(&r, W, H);
        let (w1, h1) = Orientation::R90.window(W, H);
        let twice = Orientation::R90.apply_rect(&once, w1, h1);
        assert_eq!(Orientation::R180.apply_rect(&r, W, H), twice);
    }

    #[test]
    fn mirror_is_involution() {
        let r = Rect::from_extents(5, 10, 30, 50);
        let m = Orientation::Mx.apply_rect(&r, W, H);
        assert_eq!(Orientation::Mx.apply_rect(&m, W, H), r);
    }

    #[test]
    fn window_dims_swap_on_odd_rotations() {
        assert_eq!(Orientation::R90.window(W, H), (H, W));
        assert_eq!(Orientation::R180.window(W, H), (W, H));
        assert_eq!(Orientation::MxR270.window(W, H), (H, W));
    }

    #[test]
    fn transformed_rect_stays_in_window() {
        let r = Rect::from_extents(0, 0, 10, 5);
        for o in D8 {
            let (tw, th) = o.window(W, H);
            let t = o.apply_rect(&r, W, H);
            let win = Rect::from_extents(0, 0, tw, th);
            assert!(win.contains_rect(&t), "{o}: {t:?} outside {tw}x{th}");
            assert_eq!(t.area(), r.area(), "{o} changed area");
        }
    }

    #[test]
    fn composition_matches_sequential_application() {
        let r = Rect::from_extents(3, 7, 21, 18);
        for a in D8 {
            for b in D8 {
                let combined = a.then(b).apply_rect(&r, W, H);
                let (w1, h1) = a.window(W, H);
                let sequential = b.apply_rect(&a.apply_rect(&r, W, H), w1, h1);
                assert_eq!(combined, sequential, "{a} then {b}");
            }
        }
    }

    #[test]
    fn inverse_composes_to_identity() {
        for o in D8 {
            assert_eq!(o.then(o.inverse()), Orientation::R0, "{o}");
            assert_eq!(o.inverse().then(o), Orientation::R0, "{o}");
        }
    }

    #[test]
    fn group_is_closed_and_has_eight_elements() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for a in D8 {
            for b in D8 {
                seen.insert(a.then(b));
            }
        }
        assert_eq!(seen.len(), 8);
    }
}
