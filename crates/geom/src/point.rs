//! Points in integer nanometres.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Neg, Sub, SubAssign};

/// Layout coordinate in nanometres.
///
/// All geometry in this workspace uses signed 64-bit integer nanometres; the
/// largest layouts in the paper are below 1 mm per side (10⁶ nm), so areas in
/// nm² fit comfortably in an `i64`/`i128`.
pub type Coord = i64;

/// A point on the layout grid, in nanometres.
///
/// ```
/// use hotspot_geom::Point;
/// let p = Point::new(3, 4) + Point::new(1, 1);
/// assert_eq!(p, Point::new(4, 5));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Point {
    /// Horizontal coordinate in nanometres.
    pub x: Coord,
    /// Vertical coordinate in nanometres.
    pub y: Coord,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0, y: 0 };

    /// Creates a point from its coordinates.
    pub const fn new(x: Coord, y: Coord) -> Self {
        Point { x, y }
    }

    /// Manhattan (L1) distance to `other`.
    ///
    /// ```
    /// use hotspot_geom::Point;
    /// assert_eq!(Point::new(0, 0).manhattan_distance(Point::new(3, -4)), 7);
    /// ```
    pub fn manhattan_distance(self, other: Point) -> Coord {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Chebyshev (L∞) distance to `other`.
    pub fn chebyshev_distance(self, other: Point) -> Coord {
        (self.x - other.x).abs().max((self.y - other.y).abs())
    }

    /// Component-wise minimum.
    pub fn min_components(self, other: Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    pub fn max_components(self, other: Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Swaps the x and y coordinates (reflection across the main diagonal).
    pub fn transpose(self) -> Point {
        Point::new(self.y, self.x)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Point {
    fn add_assign(&mut self, rhs: Point) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Point {
    fn sub_assign(&mut self, rhs: Point) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Neg for Point {
    type Output = Point;
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl From<(Coord, Coord)> for Point {
    fn from((x, y): (Coord, Coord)) -> Point {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Point::new(3, 4);
        let b = Point::new(-1, 2);
        assert_eq!(a + b, Point::new(2, 6));
        assert_eq!(a - b, Point::new(4, 2));
        assert_eq!(-a, Point::new(-3, -4));
        let mut c = a;
        c += b;
        assert_eq!(c, Point::new(2, 6));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn distances() {
        let a = Point::new(0, 0);
        let b = Point::new(3, -4);
        assert_eq!(a.manhattan_distance(b), 7);
        assert_eq!(a.chebyshev_distance(b), 4);
        assert_eq!(b.manhattan_distance(a), 7);
    }

    #[test]
    fn min_max_components() {
        let a = Point::new(1, 9);
        let b = Point::new(4, 2);
        assert_eq!(a.min_components(b), Point::new(1, 2));
        assert_eq!(a.max_components(b), Point::new(4, 9));
    }

    #[test]
    fn transpose_swaps() {
        assert_eq!(Point::new(2, 5).transpose(), Point::new(5, 2));
    }

    #[test]
    fn display() {
        assert_eq!(Point::new(-1, 7).to_string(), "(-1, 7)");
    }

    #[test]
    fn from_tuple() {
        let p: Point = (10, 20).into();
        assert_eq!(p, Point::new(10, 20));
    }
}
