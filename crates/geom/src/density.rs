//! Pixelated polygon-density grids and the orientation-minimised distance of
//! eq. (1) in the paper.
//!
//! A core pattern is pixelated into an `n × n` grid; each pixel stores the
//! fraction of its area covered by polygons. The distance between two
//! patterns is the minimum over the eight orientations of the summed
//! per-pixel density difference:
//!
//! ```text
//! ρ(p_i, p_j) = min_{τ ∈ D8}  Σ_k | d_k(p_i) − d_k(τ(p_j)) |      (1)
//! ```

use crate::{AreaTable, Coord, Orientation, RasterMode, Rect, D8};
use serde::{Deserialize, Serialize};

/// A pixelated density image of a pattern window.
///
/// ```
/// use hotspot_geom::{DensityGrid, Rect};
/// let window = Rect::from_extents(0, 0, 100, 100);
/// let rects = [Rect::from_extents(0, 0, 50, 100)];
/// let g = DensityGrid::from_rects(&window, &rects, 2, 2);
/// // Left half fully covered, right half empty.
/// assert_eq!(g.cells(), &[1.0, 0.0, 1.0, 0.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DensityGrid {
    nx: usize,
    ny: usize,
    cells: Vec<f64>, // row-major, row 0 at the bottom
}

/// Result of the eq. (1) distance: the minimising orientation and its value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DensityDistance {
    /// Summed per-pixel absolute density difference at the best orientation.
    pub distance: f64,
    /// Orientation of the second operand that minimises the distance.
    pub orientation: Orientation,
}

/// The empty `0 × 0` grid — a scratch placeholder for in-place
/// rasterisation ([`crate::AreaTableGrid::rasterize_into`]).
impl Default for DensityGrid {
    fn default() -> Self {
        DensityGrid {
            nx: 0,
            ny: 0,
            cells: Vec::new(),
        }
    }
}

impl DensityGrid {
    /// Rasterises `rects` (clipped to `window`) into an `nx × ny` grid of
    /// coverage fractions.
    ///
    /// Coverage is accumulated as an exact integer area per cell (nm², in
    /// `i64`) and divided by the cell area exactly once at the end, so the
    /// result is independent of the order of `rects` — integer addition
    /// commutes, unlike the f64 fraction sum it replaces.
    ///
    /// # Panics
    ///
    /// Panics if `nx` or `ny` is zero or the window is empty.
    pub fn from_rects(window: &Rect, rects: &[Rect], nx: usize, ny: usize) -> Self {
        assert!(nx > 0 && ny > 0, "grid dimensions must be positive");
        assert!(!window.is_empty(), "window must be non-empty");
        let mut covered = vec![0i64; nx * ny];
        let w = window.width();
        let h = window.height();
        for r in rects {
            let Some(clipped) = r.intersection(window) else {
                continue;
            };
            // Local coordinates inside the window.
            let local = clipped.translate(-window.min());
            // Pixel index ranges the rectangle touches.
            let px0 = (local.min().x * nx as Coord / w).clamp(0, nx as Coord - 1) as usize;
            let px1 = ((local.max().x * nx as Coord + w - 1) / w).clamp(1, nx as Coord) as usize;
            let py0 = (local.min().y * ny as Coord / h).clamp(0, ny as Coord - 1) as usize;
            let py1 = ((local.max().y * ny as Coord + h - 1) / h).clamp(1, ny as Coord) as usize;
            for py in py0..py1 {
                for px in px0..px1 {
                    let cell = pixel_rect(w, h, nx, ny, px, py);
                    let ov = cell.overlap_area(&local);
                    if ov > 0 {
                        // Saturating keeps overlapping pathological inputs
                        // order-independent: min(true sum, i64::MAX) no
                        // matter the accumulation order.
                        let c = &mut covered[py * nx + px];
                        *c = c.saturating_add(ov);
                    }
                }
            }
        }
        // One f64 division per cell; overlapping input rects may push the
        // integer sum above the cell area, so clamp first.
        let cells = covered
            .iter()
            .enumerate()
            .map(|(idx, &cov)| {
                let cell = pixel_rect(w, h, nx, ny, idx % nx, idx / nx);
                let area = cell.area();
                if area == 0 {
                    0.0
                } else {
                    cov.min(area) as f64 / area as f64
                }
            })
            .collect();
        DensityGrid { nx, ny, cells }
    }

    /// [`DensityGrid::from_rects`] routed through a [`RasterMode`]: the
    /// single seam every pipeline grid-construction site goes through.
    ///
    /// Under [`RasterMode::Sat`] the rects are clipped to `window`, compiled
    /// into an [`AreaTable`] (overlaps accumulate multiplicity, exactly as
    /// the reference sweep does), and rasterised from the table —
    /// bit-identical to the reference sweep on arbitrary input (see
    /// [`crate::sat`]). Inputs exceeding
    /// [`AreaTable::DEFAULT_MAX_CELLS`] compressed cells silently fall
    /// back to the reference path, so the two modes always agree.
    ///
    /// # Panics
    ///
    /// Panics if `nx` or `ny` is zero or the window is empty.
    pub fn from_rects_mode(
        window: &Rect,
        rects: &[Rect],
        nx: usize,
        ny: usize,
        mode: RasterMode,
    ) -> Self {
        match mode {
            RasterMode::Reference => Self::from_rects(window, rects, nx, ny),
            RasterMode::Sat => {
                let clipped: Vec<Rect> = rects
                    .iter()
                    .filter_map(|r| r.intersection(window))
                    .collect();
                match AreaTable::try_build(&clipped, AreaTable::DEFAULT_MAX_CELLS) {
                    Some(table) => table.rasterize(window, nx, ny),
                    None => Self::from_rects(window, rects, nx, ny),
                }
            }
        }
    }

    /// Reshapes the grid to `nx × ny` with all cells zero, reusing the
    /// backing allocation, and returns the cell buffer (row-major, bottom
    /// row first) for in-place rasterisation.
    pub(crate) fn reset_for(&mut self, nx: usize, ny: usize) -> &mut [f64] {
        self.nx = nx;
        self.ny = ny;
        // Contents are not zeroed: the rasterisation kernel writes every
        // cell.
        if self.cells.len() != nx * ny {
            self.cells.clear();
            self.cells.resize(nx * ny, 0.0);
        }
        &mut self.cells
    }

    /// Builds a grid directly from cell values (row-major, bottom row first).
    ///
    /// # Panics
    ///
    /// Panics if `cells.len() != nx * ny`.
    pub fn from_cells(nx: usize, ny: usize, cells: Vec<f64>) -> Self {
        assert_eq!(cells.len(), nx * ny, "cell count mismatch");
        DensityGrid { nx, ny, cells }
    }

    /// Grid width in pixels.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height in pixels.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Raw cell values (row-major, bottom row first).
    pub fn cells(&self) -> &[f64] {
        &self.cells
    }

    /// Density at pixel `(px, py)`.
    ///
    /// # Panics
    ///
    /// Panics if the pixel is out of range.
    pub fn at(&self, px: usize, py: usize) -> f64 {
        assert!(px < self.nx && py < self.ny, "pixel out of range");
        self.cells[py * self.nx + px]
    }

    /// Mean density over the whole grid (the "polygon density"
    /// nontopological feature).
    pub fn mean(&self) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        self.cells.iter().sum::<f64>() / self.cells.len() as f64
    }

    /// Returns the grid transformed by `orientation` (pixels permuted; no
    /// re-rasterisation error).
    pub fn transform(&self, orientation: Orientation) -> DensityGrid {
        let mut out = DensityGrid {
            nx: 0,
            ny: 0,
            cells: Vec::new(),
        };
        self.transform_into(orientation, &mut out);
        out
    }

    /// [`DensityGrid::transform`] into a caller-owned scratch grid, reusing
    /// its allocation. Lets the eq. (1) 8-orientation loop permute pixels
    /// without allocating a fresh `Vec` per orientation per comparison.
    pub fn transform_into(&self, orientation: Orientation, out: &mut DensityGrid) {
        let (tnx, tny) = if orientation.rotation_steps() % 2 == 1 {
            (self.ny, self.nx)
        } else {
            (self.nx, self.ny)
        };
        out.nx = tnx;
        out.ny = tny;
        out.cells.clear();
        out.cells.resize(self.cells.len(), 0.0);
        for py in 0..self.ny {
            for px in 0..self.nx {
                let (tx, ty) = transform_pixel(orientation, px, py, self.nx, self.ny);
                out.cells[ty * tnx + tx] = self.cells[py * self.nx + px];
            }
        }
    }

    /// Plain L1 distance without orientation search.
    ///
    /// # Panics
    ///
    /// Panics if grid dimensions differ.
    pub fn l1_distance(&self, other: &DensityGrid) -> f64 {
        assert_eq!(
            (self.nx, self.ny),
            (other.nx, other.ny),
            "grid dimension mismatch"
        );
        self.cells
            .iter()
            .zip(&other.cells)
            .map(|(a, b)| (a - b).abs())
            .sum()
    }

    /// The eq. (1) distance: L1 minimised over the eight orientations of
    /// `other`.
    ///
    /// # Panics
    ///
    /// Panics if the grids cannot be aligned in any orientation (dimension
    /// mismatch in every element of D8).
    pub fn distance(&self, other: &DensityGrid) -> DensityDistance {
        let mut scratch = DensityGrid {
            nx: 0,
            ny: 0,
            cells: Vec::with_capacity(other.cells.len()),
        };
        self.distance_with(other, &mut scratch)
    }

    /// [`DensityGrid::distance`] with a caller-owned scratch grid for the
    /// orientation loop, so repeated comparisons (clustering, medoid
    /// selection) allocate nothing.
    ///
    /// # Panics
    ///
    /// Panics if the grids cannot be aligned in any orientation (dimension
    /// mismatch in every element of D8).
    pub fn distance_with(&self, other: &DensityGrid, scratch: &mut DensityGrid) -> DensityDistance {
        let mut best: Option<DensityDistance> = None;
        for o in D8 {
            other.transform_into(o, scratch);
            if (scratch.nx, scratch.ny) != (self.nx, self.ny) {
                continue;
            }
            let d = self.l1_distance(scratch);
            if best.is_none_or(|b| d < b.distance) {
                best = Some(DensityDistance {
                    distance: d,
                    orientation: o,
                });
            }
        }
        best.expect("grids cannot be aligned in any orientation")
    }

    /// Element-wise running mean: `self = (self * n + other) / (n + 1)`.
    ///
    /// Used to recompute a cluster centroid when a pattern joins the cluster.
    ///
    /// # Panics
    ///
    /// Panics if grid dimensions differ.
    pub fn fold_mean(&mut self, other: &DensityGrid, n: usize) {
        assert_eq!(
            (self.nx, self.ny),
            (other.nx, other.ny),
            "grid dimension mismatch"
        );
        let n = n as f64;
        for (a, b) in self.cells.iter_mut().zip(&other.cells) {
            *a = (*a * n + *b) / (n + 1.0);
        }
    }
}

/// The rectangle covered by pixel `(px, py)` in window-local coordinates.
///
/// Uses exact integer boundaries `floor(k·w/n)` so pixel areas tile the
/// window without gaps regardless of divisibility.
fn pixel_rect(w: Coord, h: Coord, nx: usize, ny: usize, px: usize, py: usize) -> Rect {
    let x0 = px as Coord * w / nx as Coord;
    let x1 = (px as Coord + 1) * w / nx as Coord;
    let y0 = py as Coord * h / ny as Coord;
    let y1 = (py as Coord + 1) * h / ny as Coord;
    Rect::from_extents(x0, y0, x1, y1)
}

/// Maps a pixel index through an orientation (mirror first, then rotations).
fn transform_pixel(
    orientation: Orientation,
    px: usize,
    py: usize,
    nx: usize,
    ny: usize,
) -> (usize, usize) {
    let (mut x, mut y) = (px, py);
    let (mut cw, mut ch) = (nx, ny);
    if orientation.is_mirrored() {
        x = cw - 1 - x;
    }
    for _ in 0..orientation.rotation_steps() {
        // 90° ccw for pixel indices: (x, y) -> (ch - 1 - y, x).
        let nx2 = ch - 1 - y;
        let ny2 = x;
        x = nx2;
        y = ny2;
        std::mem::swap(&mut cw, &mut ch);
    }
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point;

    fn window() -> Rect {
        Rect::from_extents(0, 0, 120, 120)
    }

    #[test]
    fn full_coverage_is_all_ones() {
        let g = DensityGrid::from_rects(&window(), &[window()], 4, 4);
        assert!(g.cells().iter().all(|&c| (c - 1.0).abs() < 1e-12));
        assert!((g.mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_is_all_zeros() {
        let g = DensityGrid::from_rects(&window(), &[], 4, 4);
        assert!(g.cells().iter().all(|&c| c == 0.0));
    }

    #[test]
    fn partial_pixel_coverage_is_fractional() {
        // Cover the left half of a 1-pixel grid.
        let g = DensityGrid::from_rects(&window(), &[Rect::from_extents(0, 0, 60, 120)], 1, 1);
        assert!((g.at(0, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overlapping_rects_clamp_to_one() {
        let r = Rect::from_extents(0, 0, 120, 120);
        let g = DensityGrid::from_rects(&window(), &[r, r], 2, 2);
        assert!(g.cells().iter().all(|&c| c <= 1.0));
    }

    #[test]
    fn rects_outside_window_are_clipped() {
        let g =
            DensityGrid::from_rects(&window(), &[Rect::from_extents(-100, -100, -10, -10)], 4, 4);
        assert_eq!(g.mean(), 0.0);
    }

    #[test]
    fn uneven_grid_division_tiles_exactly() {
        // 120 / 7 is not integral; pixel areas must still sum to the window.
        let total: i64 = (0..7)
            .flat_map(|py| (0..7).map(move |px| pixel_rect(120, 120, 7, 7, px, py).area()))
            .sum();
        assert_eq!(total, 120 * 120);
    }

    #[test]
    fn transform_preserves_mass() {
        let rects = [
            Rect::from_extents(0, 0, 30, 120),
            Rect::from_extents(60, 60, 90, 90),
        ];
        let g = DensityGrid::from_rects(&window(), &rects, 6, 6);
        for o in D8 {
            let t = g.transform(o);
            assert!((t.mean() - g.mean()).abs() < 1e-12, "{o}");
        }
    }

    #[test]
    fn transform_matches_geometric_rasterisation() {
        // Rasterising transformed geometry must equal transforming the grid.
        let rects = [
            Rect::from_extents(0, 0, 30, 120),
            Rect::from_extents(60, 0, 120, 30),
        ];
        let g = DensityGrid::from_rects(&window(), &rects, 4, 4);
        for o in D8 {
            let trects = o.apply_rects(&rects, 120, 120);
            let direct = DensityGrid::from_rects(&window(), &trects, 4, 4);
            let permuted = g.transform(o);
            assert!(
                direct.l1_distance(&permuted) < 1e-9,
                "{o}: {direct:?} vs {permuted:?}"
            );
        }
    }

    #[test]
    fn distance_of_rotated_copy_is_zero() {
        let rects = [
            Rect::from_extents(0, 0, 30, 120),
            Rect::from_extents(60, 0, 120, 30),
        ];
        let g = DensityGrid::from_rects(&window(), &rects, 6, 6);
        for o in D8 {
            let trects = o.apply_rects(&rects, 120, 120);
            let t = DensityGrid::from_rects(&window(), &trects, 6, 6);
            let d = g.distance(&t);
            assert!(d.distance < 1e-9, "{o}: distance {}", d.distance);
        }
    }

    #[test]
    fn distance_is_symmetric() {
        let a = DensityGrid::from_rects(&window(), &[Rect::from_extents(0, 0, 40, 120)], 5, 5);
        let b = DensityGrid::from_rects(&window(), &[Rect::from_extents(0, 0, 120, 40)], 5, 5);
        let dab = a.distance(&b).distance;
        let dba = b.distance(&a).distance;
        assert!((dab - dba).abs() < 1e-9);
    }

    #[test]
    fn distinct_patterns_have_positive_distance() {
        let a = DensityGrid::from_rects(&window(), &[Rect::from_extents(0, 0, 40, 40)], 5, 5);
        let b = DensityGrid::from_rects(&window(), &[window()], 5, 5);
        assert!(a.distance(&b).distance > 1.0);
    }

    #[test]
    fn fold_mean_averages() {
        let mut a = DensityGrid::from_cells(1, 2, vec![0.0, 1.0]);
        let b = DensityGrid::from_cells(1, 2, vec![1.0, 0.0]);
        a.fold_mean(&b, 1);
        assert_eq!(a.cells(), &[0.5, 0.5]);
    }

    #[test]
    fn shifted_window_rasterises_in_local_coords() {
        let win = Rect::from_extents(1000, 2000, 1120, 2120);
        let rect = Rect::from_extents(1000, 2000, 1060, 2120);
        let g = DensityGrid::from_rects(&win, &[rect], 2, 1);
        assert!((g.at(0, 0) - 1.0).abs() < 1e-12);
        assert_eq!(g.at(1, 0), 0.0);
        let _ = Point::ORIGIN; // silence unused import in some cfgs
    }
}
