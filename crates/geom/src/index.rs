//! A uniform-grid spatial index over rectangles.
//!
//! Buckets rectangles by grid cell so window queries touch only the cells a
//! window overlaps — sublinear in the rectangle count for local queries.
//! This is the shared substrate behind clip extraction, redundant clip
//! removal, and the tiled layout scanner.

use crate::{Coord, Rect};
use std::collections::HashMap;

/// A uniform-grid spatial index over rectangles.
///
/// ```
/// use hotspot_geom::{GridIndex, Rect};
/// let idx = GridIndex::build(vec![Rect::from_extents(0, 0, 100, 100)], 1000);
/// assert_eq!(idx.query(&Rect::from_extents(-50, -50, 50, 50)).len(), 1);
/// assert!(idx.query(&Rect::from_extents(200, 200, 300, 300)).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex {
    cell: Coord,
    buckets: HashMap<(Coord, Coord), Vec<usize>>,
    rects: Vec<Rect>,
}

impl GridIndex {
    /// Builds an index with the given cell size.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not positive.
    pub fn build(rects: Vec<Rect>, cell: Coord) -> GridIndex {
        assert!(cell > 0, "cell size must be positive");
        let mut buckets: HashMap<(Coord, Coord), Vec<usize>> = HashMap::new();
        for (i, r) in rects.iter().enumerate() {
            if r.is_empty() {
                continue;
            }
            let (cx0, cy0) = (r.min().x.div_euclid(cell), r.min().y.div_euclid(cell));
            // Inclusive top-right cell: subtract 1 so edge-aligned rects do
            // not spill into the next cell.
            let (cx1, cy1) = (
                (r.max().x - 1).div_euclid(cell),
                (r.max().y - 1).div_euclid(cell),
            );
            for cx in cx0..=cx1 {
                for cy in cy0..=cy1 {
                    buckets.entry((cx, cy)).or_default().push(i);
                }
            }
        }
        GridIndex {
            cell,
            buckets,
            rects,
        }
    }

    /// The grid cell size.
    pub fn cell(&self) -> Coord {
        self.cell
    }

    /// All rectangles overlapping `window`, deduplicated, in deterministic
    /// first-encounter order (cells scanned column-major, bucket entries in
    /// insertion order).
    pub fn query(&self, window: &Rect) -> Vec<Rect> {
        let mut seen: Vec<usize> = Vec::new();
        let (cx0, cy0) = (
            window.min().x.div_euclid(self.cell),
            window.min().y.div_euclid(self.cell),
        );
        let (cx1, cy1) = (
            (window.max().x - 1).div_euclid(self.cell),
            (window.max().y - 1).div_euclid(self.cell),
        );
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                if let Some(bucket) = self.buckets.get(&(cx, cy)) {
                    for &i in bucket {
                        if self.rects[i].overlaps(window) && !seen.contains(&i) {
                            seen.push(i);
                        }
                    }
                }
            }
        }
        seen.into_iter().map(|i| self.rects[i]).collect()
    }

    /// Sum of rectangle↔window overlap areas over every indexed rectangle
    /// overlapping `window`, in nm². Overlapping rectangles are counted
    /// once each (no union), so the sum is an upper bound on the covered
    /// area — exactly the bound the scan density prefilter needs.
    pub fn covered_area(&self, window: &Rect) -> i64 {
        self.query(window)
            .iter()
            .map(|r| r.overlap_area(window))
            .sum()
    }

    /// Number of indexed rectangles.
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// `true` when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// The indexed rectangles.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Bounding box over the indexed rectangles, `None` when empty.
    pub fn bbox(&self) -> Option<Rect> {
        Rect::bbox_of(self.rects.iter().filter(|r| !r.is_empty()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_finds_overlapping() {
        let rects = vec![
            Rect::from_extents(0, 0, 100, 100),
            Rect::from_extents(5000, 5000, 5100, 5100),
        ];
        let idx = GridIndex::build(rects, 1000);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.query(&Rect::from_extents(-50, -50, 50, 50)).len(), 1);
        assert_eq!(idx.query(&Rect::from_extents(0, 0, 6000, 6000)).len(), 2);
        assert!(idx
            .query(&Rect::from_extents(200, 200, 300, 300))
            .is_empty());
    }

    #[test]
    fn straddling_rects_are_deduplicated() {
        let idx = GridIndex::build(vec![Rect::from_extents(900, 900, 1100, 1100)], 1000);
        for probe in [
            Rect::from_extents(950, 950, 960, 960),
            Rect::from_extents(1050, 1050, 1060, 1060),
        ] {
            assert_eq!(idx.query(&probe).len(), 1, "probe {probe:?}");
        }
        assert_eq!(
            idx.query(&Rect::from_extents(800, 800, 1200, 1200)).len(),
            1
        );
    }

    #[test]
    fn covered_area_sums_overlaps() {
        let idx = GridIndex::build(
            vec![
                Rect::from_extents(0, 0, 10, 10),
                Rect::from_extents(5, 0, 15, 10), // overlaps the first
            ],
            1000,
        );
        let window = Rect::from_extents(0, 0, 20, 20);
        // 100 + 100: overlap double-counted, upper bound on the union (150).
        assert_eq!(idx.covered_area(&window), 200);
        assert_eq!(idx.covered_area(&Rect::from_extents(100, 100, 200, 200)), 0);
    }

    #[test]
    fn bbox_and_emptiness() {
        let empty = GridIndex::build(Vec::new(), 10);
        assert!(empty.is_empty());
        assert_eq!(empty.bbox(), None);
        let idx = GridIndex::build(
            vec![
                Rect::from_extents(2, 3, 5, 9),
                Rect::from_extents(-4, 0, 1, 2),
            ],
            10,
        );
        assert_eq!(idx.bbox(), Some(Rect::from_extents(-4, 0, 5, 9)));
    }

    #[test]
    #[should_panic(expected = "cell size must be positive")]
    fn zero_cell_panics() {
        GridIndex::build(Vec::new(), 0);
    }
}
