//! Corner and touch-point analysis of rectangle unions.
//!
//! Two of the paper's nontopological features (Fig. 7(e)) are the number of
//! corners (convex plus concave) and the number of touched points of the
//! pattern inside a clip. Both are properties of the *union* of the
//! pattern's rectangles, computed here by classifying the four quadrants
//! around every candidate vertex.

use crate::{Point, Rect};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Classification of a single vertex of a rectangle union.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CornerKind {
    /// Exactly one quadrant covered: a convex (outward) corner.
    Convex,
    /// Exactly three quadrants covered: a concave (inward) corner.
    Concave,
    /// Two diagonally opposite quadrants covered: two polygons touching at a
    /// point.
    TouchPoint,
    /// Not a corner (0, 2-adjacent, or 4 quadrants covered).
    None,
}

/// Counts of the corner kinds over a rectangle union.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CornerSummary {
    /// Convex corner count.
    pub convex: usize,
    /// Concave corner count.
    pub concave: usize,
    /// Point-touch count.
    pub touch_points: usize,
}

impl CornerSummary {
    /// Analyses the union of `rects`.
    ///
    /// ```
    /// use hotspot_geom::{CornerSummary, Rect};
    /// let s = CornerSummary::of(&[Rect::from_extents(0, 0, 10, 10)]);
    /// assert_eq!(s.convex, 4);
    /// assert_eq!(s.concave, 0);
    /// ```
    pub fn of(rects: &[Rect]) -> CornerSummary {
        // Corners of the union can appear wherever edges cross, not only at
        // input-rectangle corners (e.g. the concave corners of a plus shape
        // formed by two crossing bars), so scan the full grid induced by all
        // edge coordinates.
        let mut xs: BTreeSet<i64> = BTreeSet::new();
        let mut ys: BTreeSet<i64> = BTreeSet::new();
        for r in rects {
            if r.is_empty() {
                continue;
            }
            xs.insert(r.min().x);
            xs.insert(r.max().x);
            ys.insert(r.min().y);
            ys.insert(r.max().y);
        }
        let mut summary = CornerSummary::default();
        for &x in &xs {
            for &y in &ys {
                match classify_vertex(Point::new(x, y), rects) {
                    CornerKind::Convex => summary.convex += 1,
                    CornerKind::Concave => summary.concave += 1,
                    CornerKind::TouchPoint => summary.touch_points += 1,
                    CornerKind::None => {}
                }
            }
        }
        summary
    }

    /// Convex plus concave corner count (nontopological feature 1).
    pub fn total_corners(&self) -> usize {
        self.convex + self.concave
    }
}

/// Classifies the quadrant occupancy around vertex `p`.
fn classify_vertex(p: Point, rects: &[Rect]) -> CornerKind {
    // Quadrant occupancy: does the union cover an infinitesimal square just
    // off `p` in each diagonal direction? With closed-open rectangles a
    // quadrant is covered iff some rectangle strictly contains the open
    // quadrant corner sample.
    let ne = covers_sample(rects, p.x, p.y);
    let nw = covers_sample(rects, p.x - 1, p.y);
    let sw = covers_sample(rects, p.x - 1, p.y - 1);
    let se = covers_sample(rects, p.x, p.y - 1);
    match (ne as u8) + (nw as u8) + (sw as u8) + (se as u8) {
        1 => CornerKind::Convex,
        3 => CornerKind::Concave,
        2 => {
            if (ne && sw) || (nw && se) {
                CornerKind::TouchPoint
            } else {
                CornerKind::None // edge midpoint
            }
        }
        _ => CornerKind::None,
    }
}

/// `true` if any rect covers the 1 nm sample cell with bottom-left `(x, y)`.
fn covers_sample(rects: &[Rect], x: i64, y: i64) -> bool {
    rects.iter().any(|r| r.contains_point(Point::new(x, y)))
}

/// Convex plus concave corner count of a rectangle union.
///
/// See [`CornerSummary::of`] for the underlying analysis.
pub fn corner_count(rects: &[Rect]) -> usize {
    CornerSummary::of(rects).total_corners()
}

/// Number of point touches (two polygons meeting at exactly one point).
pub fn touch_point_count(rects: &[Rect]) -> usize {
    CornerSummary::of(rects).touch_points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect {
        Rect::from_extents(x0, y0, x1, y1)
    }

    #[test]
    fn single_rect_has_four_convex_corners() {
        let s = CornerSummary::of(&[r(0, 0, 10, 10)]);
        assert_eq!(s.convex, 4);
        assert_eq!(s.concave, 0);
        assert_eq!(s.touch_points, 0);
        assert_eq!(s.total_corners(), 4);
    }

    #[test]
    fn l_shape_has_five_convex_one_concave() {
        // Two rects forming an L.
        let s = CornerSummary::of(&[r(0, 0, 30, 10), r(0, 10, 10, 30)]);
        assert_eq!(s.convex, 5);
        assert_eq!(s.concave, 1);
        assert_eq!(s.total_corners(), 6);
    }

    #[test]
    fn abutting_rects_merge_edges() {
        // Two rects side by side form one rectangle: 4 corners only.
        let s = CornerSummary::of(&[r(0, 0, 10, 10), r(10, 0, 20, 10)]);
        assert_eq!(s.convex, 4);
        assert_eq!(s.concave, 0);
    }

    #[test]
    fn diagonal_touch_is_a_touch_point() {
        let s = CornerSummary::of(&[r(0, 0, 10, 10), r(10, 10, 20, 20)]);
        assert_eq!(s.touch_points, 1);
        assert_eq!(s.convex, 6); // 3 outer corners each
    }

    #[test]
    fn plus_shape_has_concave_corners() {
        // A plus sign: horizontal bar + vertical bar crossing it.
        let s = CornerSummary::of(&[r(0, 10, 30, 20), r(10, 0, 20, 30)]);
        assert_eq!(s.convex, 8);
        assert_eq!(s.concave, 4);
    }

    #[test]
    fn overlapping_duplicates_do_not_inflate_counts() {
        let a = r(0, 0, 10, 10);
        let s = CornerSummary::of(&[a, a, a]);
        assert_eq!(s.convex, 4);
    }

    #[test]
    fn empty_input_and_empty_rects() {
        assert_eq!(CornerSummary::of(&[]), CornerSummary::default());
        assert_eq!(
            CornerSummary::of(&[r(5, 5, 5, 9)]),
            CornerSummary::default()
        );
    }

    #[test]
    fn helper_functions_agree_with_summary() {
        let rects = [r(0, 0, 30, 10), r(0, 10, 10, 30)];
        assert_eq!(corner_count(&rects), 6);
        assert_eq!(touch_point_count(&rects), 0);
    }
}
