//! Property tests for exact integer rasterisation: summed-area tables must
//! be bit-identical to the reference sweep on arbitrary (overlapping)
//! rects, and the reference sweep itself must be invariant under rect
//! permutation.

use hotspot_geom::{AreaTable, AreaTableGrid, DensityGrid, Point, RasterMode, Rect};
use proptest::prelude::*;

fn arb_rect(span: i64) -> impl Strategy<Value = Rect> {
    (-span..span, -span..span, 1..span, 1..span)
        .prop_map(move |(x, y, w, h)| Rect::from_origin_size(Point::new(x, y), w, h))
}

fn arb_rects(span: i64, n: usize) -> impl Strategy<Value = Vec<Rect>> {
    proptest::collection::vec(arb_rect(span), 0..n)
}

proptest! {
    /// Tentpole invariant: `AreaTable::covered_area` equals the per-rect
    /// overlap sum for any query window — overlapping rects count with
    /// multiplicity, exactly like the reference sweep's accumulator.
    #[test]
    fn area_table_matches_overlap_sum(
        rects in arb_rects(200, 24),
        query in arb_rect(300),
    ) {
        let table = AreaTable::build(&rects);
        let want: i128 = rects.iter().map(|r| r.overlap_area(&query) as i128).sum();
        prop_assert_eq!(table.covered_area(&query), want);
    }

    /// Tentpole invariant: rasterising through a shared table is
    /// bit-identical (exact f64 equality, not approximate) to the reference
    /// sweep for every grid size and window — arbitrary possibly-overlapping
    /// rects, windows that only partially overlap the geometry.
    #[test]
    fn sat_rasterisation_is_bit_identical(
        rects in arb_rects(200, 24),
        window in arb_rect(300),
        nx in 1usize..12,
        ny in 1usize..12,
    ) {
        let table = AreaTable::build(&rects);
        let sat = table.rasterize(&window, nx, ny);
        let naive = DensityGrid::from_rects(&window, &rects, nx, ny);
        prop_assert_eq!(sat.cells(), naive.cells());
    }

    /// The mode-routing seam agrees with the reference constructor bit for
    /// bit on arbitrary input (the only divergence hatch left is the
    /// cell-count cap, which falls back to the reference sweep itself).
    #[test]
    fn from_rects_mode_agrees_across_modes(
        rects in arb_rects(150, 20),
        window in arb_rect(200),
        n in 1usize..10,
    ) {
        let reference = DensityGrid::from_rects_mode(&window, &rects, n, n, RasterMode::Reference);
        let sat = DensityGrid::from_rects_mode(&window, &rects, n, n, RasterMode::Sat);
        prop_assert_eq!(reference.cells(), sat.cells());
    }

    /// Satellite invariant: integer accumulation makes the reference sweep
    /// order-independent — any permutation (here: reversal plus a rotation)
    /// of the rect list, disjoint or overlapping, yields identical cells.
    #[test]
    fn from_rects_is_permutation_invariant(
        rects in arb_rects(150, 16),
        window in arb_rect(200),
        rotate_by in 0usize..16,
        nx in 1usize..10,
        ny in 1usize..10,
    ) {
        let base = DensityGrid::from_rects(&window, &rects, nx, ny);
        let mut reversed = rects.clone();
        reversed.reverse();
        prop_assert_eq!(
            DensityGrid::from_rects(&window, &reversed, nx, ny).cells(),
            base.cells()
        );
        let mut rotated = rects.clone();
        if !rotated.is_empty() {
            let mid = rotate_by % rotated.len();
            rotated.rotate_left(mid);
        }
        prop_assert_eq!(
            DensityGrid::from_rects(&window, &rotated, nx, ny).cells(),
            base.cells()
        );
    }

    /// `transform_into` reuses a scratch buffer but must produce exactly the
    /// allocating `transform`, and `distance_with` exactly `distance`.
    #[test]
    fn scratch_transform_and_distance_match_allocating(
        a_rects in arb_rects(120, 12),
        b_rects in arb_rects(120, 12),
        n in 1usize..9,
    ) {
        let window = Rect::from_extents(-120, -120, 120, 120);
        let a = DensityGrid::from_rects(&window, &a_rects, n, n);
        let b = DensityGrid::from_rects(&window, &b_rects, n, n);
        let mut scratch = DensityGrid::from_cells(0, 0, Vec::new());
        for o in hotspot_geom::D8 {
            a.transform_into(o, &mut scratch);
            prop_assert_eq!(scratch.cells(), a.transform(o).cells());
        }
        let with = a.distance_with(&b, &mut scratch);
        let without = a.distance(&b);
        prop_assert_eq!(with.distance, without.distance);
        prop_assert_eq!(with.orientation, without.orientation);
    }
}

// Degenerate cases the fuzz strategies rarely hit exactly.

proptest! {
    /// Shared per-tile subtile tables answer every window they were built
    /// for bit-identically to the reference sweep — arbitrary overlapping
    /// rects, arbitrary anchored windows, and an in-place rebuild of a
    /// previously used grid (stale retained storage must be invisible).
    #[test]
    fn grid_tables_are_bit_identical_and_rebuild_safely(
        rects_a in arb_rects(200, 16),
        rects_b in arb_rects(200, 16),
        anchors in proptest::collection::vec((0i64..120, 0i64..120, 1i64..40, 1i64..40), 1..6),
        nx in 1usize..9,
    ) {
        let region = Rect::from_extents(0, 0, 160, 160);
        let windows: Vec<Rect> = anchors
            .iter()
            .map(|&(x, y, w, h)| Rect::from_extents(x, y, (x + w).min(160), (y + h).min(160)))
            .filter(|r| !r.is_empty() && r.width() <= 40 && r.height() <= 40)
            .collect();
        let mut grid = AreaTableGrid::build_for(&region, 40, 40, &rects_a, usize::MAX, &windows);
        for w in &windows {
            if let Some(sat) = grid.rasterize(w, nx, nx) {
                let naive = DensityGrid::from_rects(w, &rects_a, nx, nx);
                prop_assert_eq!(sat.cells(), naive.cells());
            }
        }
        grid.rebuild_for(&region, 40, 40, &rects_b, usize::MAX, &windows);
        for w in &windows {
            if let Some(sat) = grid.rasterize(w, nx, nx) {
                let naive = DensityGrid::from_rects(w, &rects_b, nx, nx);
                prop_assert_eq!(sat.cells(), naive.cells());
            }
        }
    }
}

#[test]
fn empty_tile_rasterises_to_zero_grid() {
    let table = AreaTable::build(&[]);
    let window = Rect::from_extents(0, 0, 100, 100);
    let sat = table.rasterize(&window, 4, 4);
    let naive = DensityGrid::from_rects(&window, &[], 4, 4);
    assert_eq!(sat.cells(), naive.cells());
    assert!(sat.cells().iter().all(|&c| c == 0.0));
}

#[test]
fn clip_fully_outside_coverage_is_zero() {
    let rects = [Rect::from_extents(0, 0, 50, 50)];
    let table = AreaTable::build(&rects);
    let window = Rect::from_extents(10_000, 10_000, 10_100, 10_100);
    let sat = table.rasterize(&window, 8, 8);
    let naive = DensityGrid::from_rects(&window, &rects, 8, 8);
    assert_eq!(sat.cells(), naive.cells());
    assert!(sat.cells().iter().all(|&c| c == 0.0));
}

#[test]
fn one_by_one_grid_is_exact_mean_coverage() {
    let rects = [
        Rect::from_extents(0, 0, 30, 120),
        Rect::from_extents(60, 60, 90, 90),
    ];
    let window = Rect::from_extents(0, 0, 120, 120);
    let table = AreaTable::build(&rects);
    let sat = table.rasterize(&window, 1, 1);
    let naive = DensityGrid::from_rects(&window, &rects, 1, 1);
    assert_eq!(sat.cells(), naive.cells());
    let covered: i64 = rects.iter().map(|r| r.overlap_area(&window)).sum();
    assert_eq!(sat.at(0, 0), covered as f64 / window.area() as f64);
}

#[test]
fn grid_finer_than_window_handles_empty_pixels() {
    // A 3-nm-wide window split into 8 columns leaves zero-width pixels;
    // both paths must agree (empty pixels stay 0.0, no NaNs).
    let window = Rect::from_extents(0, 0, 3, 3);
    let rects = [Rect::from_extents(0, 0, 2, 3)];
    let table = AreaTable::build(&rects);
    let sat = table.rasterize(&window, 8, 8);
    let naive = DensityGrid::from_rects(&window, &rects, 8, 8);
    assert_eq!(sat.cells(), naive.cells());
    assert!(sat.cells().iter().all(|c| c.is_finite()));
}
