//! Property-based tests for the geometry substrate.

use hotspot_geom::{DensityGrid, Orientation, Point, Polygon, Rect, D8};
use proptest::prelude::*;

fn arb_rect(max: i64) -> impl Strategy<Value = Rect> {
    (0..max, 0..max, 1..max, 1..max)
        .prop_map(move |(x, y, w, h)| Rect::from_origin_size(Point::new(x, y), w, h))
}

fn arb_rects(max: i64, n: usize) -> impl Strategy<Value = Vec<Rect>> {
    proptest::collection::vec(arb_rect(max), 1..n)
}

proptest! {
    #[test]
    fn rect_intersection_is_commutative(a in arb_rect(200), b in arb_rect(200)) {
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
        prop_assert_eq!(a.overlap_area(&b), b.overlap_area(&a));
    }

    #[test]
    fn rect_intersection_is_contained_in_both(a in arb_rect(200), b in arb_rect(200)) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
        }
    }

    #[test]
    fn union_bbox_contains_both(a in arb_rect(200), b in arb_rect(200)) {
        let u = a.union_bbox(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
    }

    #[test]
    fn translate_preserves_area(a in arb_rect(200), dx in -100i64..100, dy in -100i64..100) {
        prop_assert_eq!(a.translate(Point::new(dx, dy)).area(), a.area());
    }

    #[test]
    fn orientation_roundtrip_restores_rect(a in arb_rect(100)) {
        // Keep the rect inside a fixed window for the transform.
        let (w, h) = (220, 220);
        for o in D8 {
            let (tw, th) = o.window(w, h);
            let t = o.apply_rect(&a, w, h);
            let back = o.inverse().apply_rect(&t, tw, th);
            prop_assert_eq!(back, a, "orientation {}", o);
        }
    }

    #[test]
    fn orientation_composition_associative(
        i in 0usize..8, j in 0usize..8, k in 0usize..8
    ) {
        let (a, b, c) = (D8[i], D8[j], D8[k]);
        prop_assert_eq!(a.then(b).then(c), a.then(b.then(c)));
    }

    #[test]
    fn density_grid_mean_matches_covered_area(rects in arb_rects(100, 6)) {
        // Union area via inclusion over a discrete grid equals grid mean.
        let window = Rect::from_extents(0, 0, 200, 200);
        let g = DensityGrid::from_rects(&window, &rects, 10, 10);
        // Exact union area by scanline over unit cells is too slow; instead
        // check bounds: mean * window_area >= max single rect clipped area /
        // window area is not an invariant under overlap, so check weaker
        // bounds: 0 <= mean <= sum of clipped areas / window area.
        let sum_clipped: i64 = rects
            .iter()
            .filter_map(|r| r.intersection(&window))
            .map(|r| r.area())
            .sum();
        let upper = (sum_clipped as f64 / window.area() as f64).min(1.0);
        prop_assert!(g.mean() >= -1e-12);
        prop_assert!(g.mean() <= upper + 1e-9);
    }

    #[test]
    fn density_distance_zero_for_any_orientation(rects in arb_rects(200, 5)) {
        let window = Rect::from_extents(0, 0, 200, 200);
        let clipped: Vec<Rect> = rects
            .iter()
            .filter_map(|r| r.intersection(&window))
            .collect();
        prop_assume!(!clipped.is_empty());
        let g = DensityGrid::from_rects(&window, &clipped, 8, 8);
        for o in D8 {
            let trects = o.apply_rects(&clipped, 200, 200);
            let t = DensityGrid::from_rects(&window, &trects, 8, 8);
            prop_assert!(g.distance(&t).distance < 1e-9, "orientation {}", o);
        }
    }

    #[test]
    fn density_distance_triangle_inequality(
        a in arb_rects(200, 4), b in arb_rects(200, 4), c in arb_rects(200, 4)
    ) {
        // The plain L1 distance (fixed orientation) is a metric; the
        // orientation-minimised one satisfies the triangle inequality too
        // because D8 is a group.
        let window = Rect::from_extents(0, 0, 200, 200);
        let ga = DensityGrid::from_rects(&window, &a, 6, 6);
        let gb = DensityGrid::from_rects(&window, &b, 6, 6);
        let gc = DensityGrid::from_rects(&window, &c, 6, 6);
        let dab = ga.distance(&gb).distance;
        let dbc = gb.distance(&gc).distance;
        let dac = ga.distance(&gc).distance;
        prop_assert!(dac <= dab + dbc + 1e-9);
    }

    #[test]
    fn dissection_preserves_area(
        xs in proptest::collection::vec(1i64..50, 2..5),
        ys in proptest::collection::vec(1i64..50, 2..5),
    ) {
        // Build a staircase polygon from cumulative steps: always valid.
        let mut verts = vec![Point::new(0, 0)];
        let (mut x, mut y) = (0i64, 0i64);
        for (&dx, &dy) in xs.iter().zip(&ys) {
            x += dx;
            verts.push(Point::new(x, y));
            y += dy;
            verts.push(Point::new(x, y));
        }
        verts.push(Point::new(0, y));
        let poly = Polygon::new(verts).expect("staircase is rectilinear");
        let rects = poly.dissect_horizontal();
        let total: i64 = rects.iter().map(|r| r.area()).sum();
        prop_assert_eq!(total, poly.area());
        // Rectangles must be pairwise disjoint.
        for i in 0..rects.len() {
            for j in (i + 1)..rects.len() {
                prop_assert!(!rects[i].overlaps(&rects[j]));
            }
        }
    }

    #[test]
    fn dissection_rects_inside_bbox(
        xs in proptest::collection::vec(1i64..40, 2..6),
        ys in proptest::collection::vec(1i64..40, 2..6),
    ) {
        let mut verts = vec![Point::new(0, 0)];
        let (mut x, mut y) = (0i64, 0i64);
        for (&dx, &dy) in xs.iter().zip(&ys) {
            x += dx;
            verts.push(Point::new(x, y));
            y += dy;
            verts.push(Point::new(x, y));
        }
        verts.push(Point::new(0, y));
        let poly = Polygon::new(verts).expect("staircase is rectilinear");
        let bbox = poly.bbox();
        for r in poly.dissect_horizontal() {
            prop_assert!(bbox.contains_rect(&r));
        }
    }
}

proptest! {
    #[test]
    fn union_area_bounds(rects in proptest::collection::vec(
        (0i64..100, 0i64..100, 1i64..60, 1i64..60), 1..8
    )) {
        let rects: Vec<Rect> = rects
            .into_iter()
            .map(|(x, y, w, h)| Rect::from_origin_size(Point::new(x, y), w, h))
            .collect();
        let union = hotspot_geom::boolean::union_area(&rects);
        let sum: i64 = rects.iter().map(Rect::area).sum();
        let max_single = rects.iter().map(Rect::area).max().unwrap_or(0);
        prop_assert!(union <= sum, "union {union} exceeds sum {sum}");
        prop_assert!(union >= max_single, "union {union} below max rect {max_single}");
        // Union of the set equals union of the set plus duplicates.
        let mut doubled = rects.clone();
        doubled.extend(rects.iter().copied());
        prop_assert_eq!(union, hotspot_geom::boolean::union_area(&doubled));
    }

    #[test]
    fn subtract_partitions_target(
        cutters in proptest::collection::vec((0i64..100, 0i64..100, 1i64..60, 1i64..60), 0..6)
    ) {
        let target = Rect::from_extents(0, 0, 120, 120);
        let cutters: Vec<Rect> = cutters
            .into_iter()
            .map(|(x, y, w, h)| Rect::from_origin_size(Point::new(x, y), w, h))
            .collect();
        let parts = hotspot_geom::boolean::subtract(&target, &cutters);
        // Disjoint pieces inside the target, none touching a cutter.
        for (i, p) in parts.iter().enumerate() {
            prop_assert!(target.contains_rect(p));
            prop_assert!(!cutters.iter().any(|c| c.overlaps(p)));
            for q in &parts[i + 1..] {
                prop_assert!(!p.overlaps(q));
            }
        }
        // Areas reconcile with the union primitive.
        let clipped: Vec<Rect> = cutters
            .iter()
            .filter_map(|c| c.intersection(&target))
            .collect();
        let remaining: i64 = parts.iter().map(Rect::area).sum();
        prop_assert_eq!(
            remaining,
            target.area() - hotspot_geom::boolean::union_area(&clipped)
        );
    }
}

#[test]
fn orientation_identity_constant() {
    assert_eq!(Orientation::default(), Orientation::R0);
}
